//===- tests/slin_test.cpp - Unit tests for speculative linearizability ---==//
//
// Part of the slin project.
//
//===----------------------------------------------------------------------===//

#include "adt/Consensus.h"
#include "slin/Composition.h"
#include "slin/Invariants.h"
#include "slin/SlinChecker.h"
#include "slin/SlinWitness.h"
#include "trace/TraceIo.h"

#include <gtest/gtest.h>

using namespace slin;

namespace {

/// Client \p C's proposal of \p V (identity-tagged, see adt/Values.h).
Input P(std::int64_t V, ClientId C) { return cons::proposeBy(V, C); }
Output D(std::int64_t V) { return cons::decide(V); }
SwitchValue Sv(std::int64_t V) { return SwitchValue{V}; }

/// A Quorum-style fast-path trace of phase (1, 2): client 1 decides on the
/// fast path, client 2 aborts to the backup carrying the decided value.
Trace quorumFastThenAbort() {
  return {
      makeInvoke(1, 1, P(5, 1)),
      makeRespond(1, 1, P(5, 1), D(5)),
      makeInvoke(2, 1, P(7, 2)),
      makeSwitch(2, 2, P(7, 2), Sv(5)),
  };
}

/// A Backup-style trace of phase (2, 3): two clients switch in with the
/// same value and decide it.
Trace backupSameSwitchValues() {
  return {
      makeSwitch(1, 2, P(5, 1), Sv(5)),
      makeRespond(1, 2, P(5, 1), D(5)),
      makeSwitch(2, 2, P(7, 2), Sv(5)),
      makeRespond(2, 2, P(7, 2), D(5)),
  };
}

/// Backup with conflicting switch values (contention in the fast phase):
/// everyone must still agree, on one of the submitted values.
Trace backupMixedSwitchValues() {
  return {
      makeSwitch(1, 2, P(5, 1), Sv(5)),
      makeSwitch(2, 2, P(7, 2), Sv(7)),
      makeRespond(1, 2, P(5, 1), D(7)),
      makeRespond(2, 2, P(7, 2), D(7)),
  };
}

} // namespace

//===----------------------------------------------------------------------===//
// Invariants I1-I5.
//===----------------------------------------------------------------------===//

TEST(InvariantsTest, FastPathTraceSatisfiesI1I2I3) {
  PhaseSignature Sig(1, 2);
  EXPECT_TRUE(checkFirstPhaseInvariants(quorumFastThenAbort(), Sig).Ok);
}

TEST(InvariantsTest, I1CatchesSwitchValueMismatch) {
  PhaseSignature Sig(1, 2);
  Trace T = quorumFastThenAbort();
  T[3].Sv = Sv(7); // Switches with its own value although 5 was decided.
  EXPECT_FALSE(checkInvariantI1(T, Sig).Ok);
}

TEST(InvariantsTest, I2CatchesSplitDecision) {
  Trace T = {
      makeInvoke(1, 1, P(5, 1)),
      makeRespond(1, 1, P(5, 1), D(5)),
      makeInvoke(2, 1, P(7, 2)),
      makeRespond(2, 1, P(7, 2), D(7)),
  };
  EXPECT_FALSE(checkInvariantI2(T).Ok);
}

TEST(InvariantsTest, I3CatchesUnproposedValue) {
  PhaseSignature Sig(1, 2);
  Trace T = {
      makeInvoke(2, 1, P(7, 2)),
      makeSwitch(2, 2, P(7, 2), Sv(9)), // 9 never proposed.
  };
  EXPECT_FALSE(checkInvariantI3(T, Sig).Ok);
  Trace OwnValue = {
      makeInvoke(2, 1, P(7, 2)),
      makeSwitch(2, 2, P(7, 2), Sv(7)), // Own value: fine.
  };
  EXPECT_TRUE(checkInvariantI3(OwnValue, Sig).Ok);
}

TEST(InvariantsTest, SecondPhaseInvariantsHold) {
  PhaseSignature Sig(2, 3);
  EXPECT_TRUE(checkSecondPhaseInvariants(backupSameSwitchValues(), Sig).Ok);
  EXPECT_TRUE(checkSecondPhaseInvariants(backupMixedSwitchValues(), Sig).Ok);
}

TEST(InvariantsTest, I5CatchesUnsubmittedDecision) {
  PhaseSignature Sig(2, 3);
  Trace T = backupMixedSwitchValues();
  T[2].Out = D(9); // 9 was never a switch value.
  T[3].Out = D(9);
  EXPECT_FALSE(checkInvariantI5(T, Sig).Ok);
}

//===----------------------------------------------------------------------===//
// SLin checking: first phase.
//===----------------------------------------------------------------------===//

TEST(SlinCheckerTest, FastPathTraceIsSlin) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(1, 2);
  SlinVerdict V = checkSlin(quorumFastThenAbort(), Sig, Cons, Rel);
  ASSERT_EQ(V.Outcome, Verdict::Yes) << V.Reason;
  EXPECT_TRUE(V.Exact);
  for (const auto &[Finit, W] : V.Witnesses)
    EXPECT_TRUE(
        verifySlinWitness(quorumFastThenAbort(), Sig, Cons, Rel, Finit, W).Ok)
        << verifySlinWitness(quorumFastThenAbort(), Sig, Cons, Rel, Finit, W)
               .Reason;
}

TEST(SlinCheckerTest, I1ViolationRejected) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(1, 2);
  Trace T = quorumFastThenAbort();
  T[3].Sv = Sv(7); // Decided 5, switches 7: abort history cannot start p7
                   // and still extend the commit [p5].
  SlinVerdict V = checkSlin(T, Sig, Cons, Rel);
  EXPECT_EQ(V.Outcome, Verdict::No) << V.Reason;
}

TEST(SlinCheckerTest, UnproposedSwitchValueRejected) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(1, 2);
  Trace T = {
      makeInvoke(2, 1, P(7, 2)),
      makeSwitch(2, 2, P(7, 2), Sv(9)),
  };
  SlinVerdict V = checkSlin(T, Sig, Cons, Rel);
  EXPECT_EQ(V.Outcome, Verdict::No);
}

TEST(SlinCheckerTest, SwitchWithOwnValueAccepted) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(1, 2);
  Trace T = {
      makeInvoke(2, 1, P(7, 2)),
      makeSwitch(2, 2, P(7, 2), Sv(7)),
  };
  SlinVerdict V = checkSlin(T, Sig, Cons, Rel);
  EXPECT_EQ(V.Outcome, Verdict::Yes) << V.Reason;
}

TEST(SlinCheckerTest, DecisionAfterAbortConstrained) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(1, 2);
  // c2 aborts with 5, then c1 decides 5 whose proposal predates the abort:
  // fine.
  Trace Good = {
      makeInvoke(1, 1, P(5, 1)),
      makeInvoke(2, 1, P(7, 2)),
      makeSwitch(2, 2, P(7, 2), Sv(5)),
      makeRespond(1, 1, P(5, 1), D(5)),
  };
  EXPECT_EQ(checkSlin(Good, Sig, Cons, Rel).Outcome, Verdict::Yes);

  // c3 proposes 9 *after* the abort and decides it: the commit history
  // cannot be a prefix of the abort history fixed at abort time.
  Trace Bad = {
      makeInvoke(1, 1, P(5, 1)),
      makeInvoke(2, 1, P(7, 2)),
      makeSwitch(2, 2, P(7, 2), Sv(5)),
      makeInvoke(3, 1, P(9, 3)),
      makeRespond(3, 1, P(9, 3), D(9)),
  };
  EXPECT_EQ(checkSlin(Bad, Sig, Cons, Rel).Outcome, Verdict::No);
}

TEST(SlinCheckerTest, LateDeciderAfterAbortStrictVsRelaxed) {
  // The reproduction finding documented in slin/SlinChecker.h: a client
  // that invokes *after* a switch and decides on the fast path (RCons and
  // Quorum both produce this; invariant I1 explicitly contemplates it) is
  // rejected by the strict Definition 28 — no abort history fixed at the
  // switch can contain its commit — but accepted under the relaxed
  // end-of-trace abort validity that the Section 2.4 construction uses.
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(1, 2);
  Trace T = {
      makeInvoke(1, 1, P(5, 1)),
      makeRespond(1, 1, P(5, 1), D(5)),
      makeInvoke(2, 1, P(7, 2)),
      makeSwitch(2, 2, P(7, 2), Sv(5)),
      makeInvoke(3, 1, P(9, 3)),          // Arrives after the switch...
      makeRespond(3, 1, P(9, 3), D(5)),   // ...and decides the fast way.
  };
  EXPECT_EQ(checkSlin(T, Sig, Cons, Rel).Outcome, Verdict::No);
  SlinCheckOptions Relaxed;
  Relaxed.AbortValidityAtEnd = true;
  SlinVerdict V = checkSlin(T, Sig, Cons, Rel, Relaxed);
  EXPECT_EQ(V.Outcome, Verdict::Yes) << V.Reason;
  for (const auto &[Finit, W] : V.Witnesses)
    EXPECT_TRUE(verifySlinWitness(T, Sig, Cons, Rel, Finit, W,
                                  /*AbortValidityAtEnd=*/true)
                    .Ok);
}

TEST(SlinCheckerTest, PureLinTraceIsSlinWithoutSwitches) {
  // Theorem 2 direction: a switch-free (1, n) trace is SLin iff
  // linearizable.
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(1, 2);
  Trace T = {
      makeInvoke(1, 1, P(1, 1)),
      makeInvoke(2, 1, P(2, 2)),
      makeRespond(2, 1, P(2, 2), D(2)),
      makeRespond(1, 1, P(1, 1), D(2)),
  };
  EXPECT_EQ(checkSlin(T, Sig, Cons, Rel).Outcome, Verdict::Yes);
  Trace Bad = T;
  Bad[3].Out = D(1);
  EXPECT_EQ(checkSlin(Bad, Sig, Cons, Rel).Outcome, Verdict::No);
}

//===----------------------------------------------------------------------===//
// SLin checking: second phase.
//===----------------------------------------------------------------------===//

TEST(SlinCheckerTest, BackupSameValuesIsSlin) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(2, 3);
  Trace T = backupSameSwitchValues();
  SlinVerdict V = checkSlin(T, Sig, Cons, Rel);
  ASSERT_EQ(V.Outcome, Verdict::Yes) << V.Reason;
  for (const auto &[Finit, W] : V.Witnesses)
    EXPECT_TRUE(verifySlinWitness(T, Sig, Cons, Rel, Finit, W).Ok)
        << verifySlinWitness(T, Sig, Cons, Rel, Finit, W).Reason;
}

TEST(SlinCheckerTest, BackupMixedValuesIsSlin) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(2, 3);
  SlinVerdict V = checkSlin(backupMixedSwitchValues(), Sig, Cons, Rel);
  ASSERT_EQ(V.Outcome, Verdict::Yes) << V.Reason;
}

TEST(SlinCheckerTest, BackupDecidingForeignValueRejected) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(2, 3);
  Trace T = backupMixedSwitchValues();
  T[2].Out = D(9); // Not a switch value, never invoked.
  T[3].Out = D(9);
  EXPECT_EQ(checkSlin(T, Sig, Cons, Rel).Outcome, Verdict::No);
}

TEST(SlinCheckerTest, BackupSplitDecisionRejected) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(2, 3);
  Trace T = backupMixedSwitchValues();
  T[2].Out = D(5);
  T[3].Out = D(7); // Clients disagree.
  EXPECT_EQ(checkSlin(T, Sig, Cons, Rel).Outcome, Verdict::No);
}

TEST(SlinCheckerTest, BackupViolatingInitOrderRejected) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(2, 3);
  // Both clients switch in with 5 but decide 7 (which was pending in the
  // second phase): the decision contradicts the init LCP [p5].
  Trace T = {
      makeSwitch(1, 2, P(7, 1), Sv(5)),
      makeSwitch(2, 2, P(7, 2), Sv(5)),
      makeRespond(1, 2, P(7, 1), D(7)),
      makeRespond(2, 2, P(7, 2), D(7)),
  };
  EXPECT_EQ(checkSlin(T, Sig, Cons, Rel).Outcome, Verdict::No);
}

//===----------------------------------------------------------------------===//
// Composition (Theorem 3/5) and the Appendix C merge.
//===----------------------------------------------------------------------===//

namespace {

/// Composes the canonical Quorum-fast + Backup pair used across these
/// tests: client 2 aborts the fast phase with value 5 and decides in the
/// backup.
Trace composedTwoPhaseTrace() {
  return {
      makeInvoke(1, 1, P(5, 1)),
      makeRespond(1, 1, P(5, 1), D(5)),
      makeInvoke(2, 1, P(7, 2)),
      makeSwitch(2, 2, P(7, 2), Sv(5)),
      makeRespond(2, 2, P(7, 2), D(5)),
  };
}

} // namespace

TEST(CompositionTest, ComposeTracesSynchronizesOnSwitches) {
  PhaseSignature Sig12(1, 2), Sig23(2, 3);
  Trace T = composedTwoPhaseTrace();
  Trace Tmn = projectTrace(T, Sig12);
  Trace Tno = projectTrace(T, Sig23);
  Rng R(5);
  ComposeResult C = composeTraces(Tmn, Sig12, Tno, Sig23, R);
  ASSERT_TRUE(C.Ok) << C.Error;
  EXPECT_EQ(projectTrace(C.Composed, Sig12), Tmn);
  EXPECT_EQ(projectTrace(C.Composed, Sig23), Tno);
}

TEST(CompositionTest, ComposeRejectsMismatchedSwitches) {
  PhaseSignature Sig12(1, 2), Sig23(2, 3);
  Trace Tmn = {makeInvoke(2, 1, P(7, 2)), makeSwitch(2, 2, P(7, 2), Sv(5))};
  Trace Tno = {makeSwitch(2, 2, P(7, 2), Sv(6))}; // Different value.
  Rng R(5);
  EXPECT_FALSE(composeTraces(Tmn, Sig12, Tno, Sig23, R).Ok);
}

TEST(CompositionTest, ComposedTraceIsSlin) {
  // Theorem 3 end to end on the canonical example: the composed (1, 3)
  // trace is (1, 3)-speculatively linearizable (hence, with no aborts at
  // the top, linearizable — Theorem 2).
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig13(1, 3);
  SlinVerdict V = checkSlin(composedTwoPhaseTrace(), Sig13, Cons, Rel);
  ASSERT_EQ(V.Outcome, Verdict::Yes) << V.Reason;
}

TEST(CompositionTest, AppendixCMergeProducesVerifiableWitness) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig12(1, 2), Sig23(2, 3), Sig13(1, 3);
  Trace T = composedTwoPhaseTrace();
  Trace Tmn = projectTrace(T, Sig12);
  Trace Tno = projectTrace(T, Sig23);

  // Phase (1,2): no init actions; find its witness.
  SlinCheckResult Rmn = checkSlinUnder(Tmn, Sig12, Cons, Rel, {});
  ASSERT_EQ(Rmn.Outcome, Verdict::Yes) << Rmn.Reason;

  // Lemma 6: the abort interpretation of (1,2) is the init interpretation
  // of (2,3). Map component-mn indices to component-no indices through the
  // composed trace.
  std::vector<std::size_t> PosMn = projectionPositions(T, Sig12);
  std::vector<std::size_t> PosNo = projectionPositions(T, Sig23);
  InitInterpretation FinitNo;
  for (const auto &[IdxMn, A] : Rmn.Witness.Aborts) {
    std::size_t Composed = PosMn[IdxMn];
    for (std::size_t J = 0; J < PosNo.size(); ++J)
      if (PosNo[J] == Composed)
        FinitNo[J] = A;
  }
  ASSERT_EQ(FinitNo.size(), 1u);

  SlinCheckResult Rno = checkSlinUnder(Tno, Sig23, Cons, Rel, FinitNo);
  ASSERT_EQ(Rno.Outcome, Verdict::Yes) << Rno.Reason;

  MergeResult M = mergeWitnesses(T, Sig12, Sig23, Rmn.Witness, Rno.Witness);
  ASSERT_TRUE(M.Ok) << M.Error;

  // The merged witness verifies against the composed trace under the empty
  // (1,3)-interpretation (no init actions at the bottom).
  WellFormedness Check =
      verifySlinWitness(T, Sig13, Cons, Rel, {}, M.Witness);
  EXPECT_TRUE(Check.Ok) << Check.Reason;
}

//===----------------------------------------------------------------------===//
// Witness verification rejects tampering.
//===----------------------------------------------------------------------===//

TEST(SlinWitnessTest, TamperedWitnessesRejected) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(1, 2);
  Trace T = quorumFastThenAbort();
  SlinVerdict V = checkSlin(T, Sig, Cons, Rel);
  ASSERT_EQ(V.Outcome, Verdict::Yes) << V.Reason;
  ASSERT_FALSE(V.Witnesses.empty());
  const auto &[Finit, Good] = V.Witnesses.front();
  ASSERT_TRUE(verifySlinWitness(T, Sig, Cons, Rel, Finit, Good).Ok);

  {
    SlinWitness W = Good; // Abort history no longer contains the commit.
    ASSERT_FALSE(W.Aborts.empty());
    W.Aborts[0].second = {P(9, 9)};
    EXPECT_FALSE(verifySlinWitness(T, Sig, Cons, Rel, Finit, W).Ok);
  }
  {
    SlinWitness W = Good; // Commit history rewritten to unproposed value.
    ASSERT_FALSE(W.Master.empty());
    W.Master[0] = P(9, 9);
    EXPECT_FALSE(verifySlinWitness(T, Sig, Cons, Rel, Finit, W).Ok);
  }
  {
    SlinWitness W = Good; // Drop the abort assignment entirely.
    W.Aborts.clear();
    EXPECT_FALSE(verifySlinWitness(T, Sig, Cons, Rel, Finit, W).Ok);
  }
  {
    SlinWitness W = Good; // Commit length zero is never valid.
    ASSERT_FALSE(W.Commits.empty());
    W.Commits[0].second = 0;
    EXPECT_FALSE(verifySlinWitness(T, Sig, Cons, Rel, Finit, W).Ok);
  }
}

TEST(SlinWitnessTest, ForeignInterpretationRejected) {
  // An f_init entry that is not an interpretation of the switch value must
  // be flagged by the verifier.
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  PhaseSignature Sig(2, 3);
  Trace T = backupSameSwitchValues();
  SlinVerdict V = checkSlin(T, Sig, Cons, Rel);
  ASSERT_EQ(V.Outcome, Verdict::Yes) << V.Reason;
  auto [Finit, W] = V.Witnesses.front();
  ASSERT_FALSE(Finit.empty());
  Finit.begin()->second = {cons::ghostPropose(9)}; // Not in r_init(5).
  EXPECT_FALSE(verifySlinWitness(T, Sig, Cons, Rel, Finit, W).Ok);
}

//===----------------------------------------------------------------------===//
// Universal relation.
//===----------------------------------------------------------------------===//

TEST(UniversalRelationTest, EncodeDecodeRoundTrip) {
  UniversalInitRelation Rel;
  History H = {P(1, 9), P(2, 9)};
  SwitchValue V = Rel.encode(H);
  EXPECT_EQ(Rel.decode(V), H);
  EXPECT_EQ(Rel.encode(H), V); // Interning is stable.
  EXPECT_TRUE(Rel.contains(V, H));
  EXPECT_FALSE(Rel.contains(V, History{P(1, 9)}));
}

TEST(UniversalRelationTest, InterpretationIsForced) {
  UniversalInitRelation Rel;
  History H = {P(5, 9)};
  SwitchValue V = Rel.encode(H);
  Trace T = {makeSwitch(1, 2, P(7, 1), V)};
  PhaseSignature Sig(2, 3);
  InterpretationFamily F = Rel.interpretations(T, Sig);
  ASSERT_EQ(F.Assignments.size(), 1u);
  EXPECT_TRUE(F.Exact);
  EXPECT_EQ(F.Assignments[0].at(0), H);
}
