//===- tests/lin_equivalence_test.cpp - Theorem 1/4 validation ------------==//
//
// Part of the slin project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Empirical validation of Theorem 1/4: a trace is linearizable (new
/// definition, Definition 5) iff it is linearizable* (classical definition,
/// Definition 46). We check the two decision procedures against each other
/// (and, for consensus, against the linear-time characterization) on an
/// exhaustively enumerated universe of small well-formed traces and on
/// randomized families of larger ones.
///
//===----------------------------------------------------------------------===//

#include "adt/Consensus.h"
#include "adt/Queue.h"
#include "adt/Register.h"
#include "lin/Classical.h"
#include "lin/ConsensusLin.h"
#include "lin/LinChecker.h"
#include "lin/Witness.h"
#include "trace/Gen.h"
#include "trace/TraceIo.h"
#include "trace/WellFormed.h"

#include <gtest/gtest.h>

using namespace slin;

namespace {

Input P(std::int64_t V) { return cons::propose(V); }
Output D(std::int64_t V) { return cons::decide(V); }

/// Both checkers must agree; budget exhaustion fails the test (bounds are
/// chosen so exact answers are always reached).
void expectAgreement(const Trace &T, const Adt &Type) {
  LinCheckResult NewDef = checkLinearizable(T, Type);
  ClassicalCheckResult Classical = checkLinearizableClassical(T, Type);
  ASSERT_NE(NewDef.Outcome, Verdict::Unknown) << formatTrace(T);
  ASSERT_NE(Classical.Outcome, Verdict::Unknown);
  EXPECT_EQ(NewDef.Outcome, Classical.Outcome)
      << "Theorem 1 violated on trace:\n"
      << formatTrace(T);
  if (NewDef.Outcome == Verdict::Yes) {
    EXPECT_TRUE(verifyLinWitness(T, Type, NewDef.Witness).Ok);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Exhaustive small-universe equivalence.
//===----------------------------------------------------------------------===//

struct ExhaustiveCase {
  const char *Name;
  unsigned Clients;
  unsigned MaxActions;
  std::vector<Input> Alphabet;
  std::vector<Output> Outputs;
};

class ExhaustiveEquivalence : public ::testing::TestWithParam<ExhaustiveCase> {
};

TEST_P(ExhaustiveEquivalence, ConsensusUniverse) {
  const ExhaustiveCase &C = GetParam();
  ConsensusAdt Cons;
  unsigned Count = 0;
  enumerateWellFormedTraces(
      C.Clients, C.MaxActions, C.Alphabet, C.Outputs, [&](const Trace &T) {
        ++Count;
        LinCheckResult NewDef = checkLinearizable(T, Cons);
        ClassicalCheckResult Classical = checkLinearizableClassical(T, Cons);
        LinCheckResult Fast = checkConsensusLinearizable(T);
        ASSERT_EQ(NewDef.Outcome, Classical.Outcome)
            << "Theorem 1 violated:\n"
            << formatTrace(T);
        ASSERT_EQ(NewDef.Outcome, Fast.Outcome)
            << "consensus characterization violated:\n"
            << formatTrace(T);
      });
  // Sanity: the universes are non-trivial.
  EXPECT_GT(Count, 100u) << C.Name;
}

INSTANTIATE_TEST_SUITE_P(
    SmallUniverses, ExhaustiveEquivalence,
    ::testing::Values(
        ExhaustiveCase{"2c_2v_len6", 2, 6, {P(1), P(2)}, {D(1), D(2)}},
        ExhaustiveCase{"3c_1v_len6", 3, 6, {P(1)}, {D(1), D(2)}},
        ExhaustiveCase{"2c_dup_len6", 2, 6, {P(1), P(1)}, {D(1)}},
        ExhaustiveCase{"3c_2v_len5", 3, 5, {P(1), P(2)}, {D(1), D(2)}}),
    [](const ::testing::TestParamInfo<ExhaustiveCase> &Info) {
      return Info.param.Name;
    });

struct RegisterCase {
  const char *Name;
  unsigned Clients;
  unsigned MaxActions;
};

class RegisterEquivalence : public ::testing::TestWithParam<RegisterCase> {};

TEST_P(RegisterEquivalence, RegisterUniverse) {
  const RegisterCase &C = GetParam();
  RegisterAdt Reg;
  enumerateWellFormedTraces(
      C.Clients, C.MaxActions, {reg::read(), reg::write(1), reg::write(2)},
      {Output{NoValue}, Output{1}, Output{2}}, [&](const Trace &T) {
        LinCheckResult NewDef = checkLinearizable(T, Reg);
        ClassicalCheckResult Classical = checkLinearizableClassical(T, Reg);
        ASSERT_EQ(NewDef.Outcome, Classical.Outcome)
            << "Theorem 1 violated:\n"
            << formatTrace(T);
      });
}

INSTANTIATE_TEST_SUITE_P(SmallUniverses, RegisterEquivalence,
                         ::testing::Values(RegisterCase{"2c_len4", 2, 4},
                                           RegisterCase{"2c_len5", 2, 5}),
                         [](const ::testing::TestParamInfo<RegisterCase> &I) {
                           return I.param.Name;
                         });

//===----------------------------------------------------------------------===//
// Randomized larger-trace equivalence.
//===----------------------------------------------------------------------===//

struct RandomCase {
  const char *Name;
  std::uint64_t Seed;
  unsigned Clients;
  unsigned Ops;
};

class RandomizedEquivalence : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomizedEquivalence, LinearizableFamilyAcceptedByBoth) {
  const RandomCase &C = GetParam();
  ConsensusAdt Cons;
  GenOptions Opts;
  Opts.NumClients = C.Clients;
  Opts.NumOps = C.Ops;
  Opts.Alphabet = {P(1), P(2), P(3)};
  Rng R(C.Seed);
  for (int I = 0; I < 150; ++I) {
    Trace T = genLinearizableTrace(Cons, Opts, R);
    LinCheckResult NewDef = checkLinearizable(T, Cons);
    EXPECT_EQ(NewDef.Outcome, Verdict::Yes)
        << "generator produced a trace the checker rejects:\n"
        << formatTrace(T);
    EXPECT_EQ(checkLinearizableClassical(T, Cons).Outcome, Verdict::Yes);
    EXPECT_EQ(checkConsensusLinearizable(T).Outcome, Verdict::Yes);
  }
}

TEST_P(RandomizedEquivalence, ArbitraryFamilyAgreement) {
  const RandomCase &C = GetParam();
  ConsensusAdt Cons;
  GenOptions Opts;
  Opts.NumClients = C.Clients;
  Opts.NumOps = C.Ops;
  Opts.Alphabet = {P(1), P(2)};
  Opts.Outputs = {D(1), D(2)};
  Rng R(C.Seed ^ 0xabcdef);
  for (int I = 0; I < 300; ++I) {
    Trace T = genArbitraryTrace(Opts, R);
    expectAgreement(T, Cons);
    EXPECT_EQ(checkConsensusLinearizable(T).Outcome,
              checkLinearizable(T, Cons).Outcome)
        << formatTrace(T);
  }
}

TEST_P(RandomizedEquivalence, RegisterArbitraryFamilyAgreement) {
  const RandomCase &C = GetParam();
  RegisterAdt Reg;
  GenOptions Opts;
  Opts.NumClients = C.Clients;
  Opts.NumOps = std::min(C.Ops, 6u);
  Opts.Alphabet = {reg::read(), reg::write(1), reg::write(2)};
  Opts.Outputs = {Output{NoValue}, Output{1}, Output{2}};
  Rng R(C.Seed ^ 0x9999);
  for (int I = 0; I < 200; ++I) {
    Trace T = genArbitraryTrace(Opts, R);
    expectAgreement(T, Reg);
  }
}

TEST_P(RandomizedEquivalence, QueueArbitraryFamilyAgreement) {
  const RandomCase &C = GetParam();
  QueueAdt Q;
  GenOptions Opts;
  Opts.NumClients = C.Clients;
  Opts.NumOps = std::min(C.Ops, 6u);
  Opts.Alphabet = {queue::enq(1), queue::enq(2), queue::deq()};
  Opts.Outputs = {Output{NoValue}, Output{1}, Output{2}};
  Rng R(C.Seed ^ 0x777);
  for (int I = 0; I < 200; ++I) {
    Trace T = genArbitraryTrace(Opts, R);
    expectAgreement(T, Q);
  }
}

TEST_P(RandomizedEquivalence, MutatedLinearizableFamilyAgreement) {
  const RandomCase &C = GetParam();
  ConsensusAdt Cons;
  GenOptions Opts;
  Opts.NumClients = C.Clients;
  Opts.NumOps = C.Ops;
  Opts.Alphabet = {P(1), P(2), P(3)};
  Opts.Outputs = {D(1), D(2), D(3)};
  Rng R(C.Seed ^ 0x31415);
  const MutationKind Kinds[] = {
      MutationKind::FlipOutput, MutationKind::SwapActions,
      MutationKind::DropResponse, MutationKind::DuplicateInvoke};
  for (int I = 0; I < 150; ++I) {
    Trace T = genLinearizableTrace(Cons, Opts, R);
    MutationKind Kind = Kinds[R.nextBounded(4)];
    if (!mutateTrace(T, Kind, Opts, R))
      continue;
    if (!checkWellFormedLin(T).Ok)
      continue; // Swaps can break alternation; equivalence needs WF traces.
    expectAgreement(T, Cons);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomizedEquivalence,
    ::testing::Values(RandomCase{"s1", 101, 3, 7},
                      RandomCase{"s2", 202, 4, 8},
                      RandomCase{"s3", 303, 2, 9},
                      RandomCase{"s4", 404, 5, 6}),
    [](const ::testing::TestParamInfo<RandomCase> &Info) {
      return Info.param.Name;
    });
