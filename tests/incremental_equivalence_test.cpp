//===- tests/incremental_equivalence_test.cpp - Streaming vs batch --------==//
//
// Part of the slin project.
//
//===----------------------------------------------------------------------===//
//
// The incremental sessions change *how* verdicts are computed (retained
// frontiers, lineage-salted memo reuse, O(1) absorption paths), never
// *what* they are. This suite pins that: over generated corpora covering
// all five ADTs (lin) and both init relations with both Definition 28
// readings (slin), a resumable session asked for a verdict after every
// event must agree with the batch checker run from scratch on every
// prefix — zero mismatches, at every prefix, including the ill-formed and
// invalid-input dooming paths.
//
//===----------------------------------------------------------------------===//

#include "adt/Consensus.h"
#include "adt/KvStore.h"
#include "adt/Queue.h"
#include "adt/Register.h"
#include "adt/Universal.h"
#include "engine/Incremental.h"
#include "spec/SpecAutomaton.h"
#include "trace/Gen.h"
#include "trace/TraceIo.h"

#include <gtest/gtest.h>

using namespace slin;

namespace {

/// Streams \p T through a resumable session, checking after every event,
/// and compares each verdict with a scratch batch check of the prefix.
void expectLinPrefixAgreement(const Adt &Type, const Trace &T,
                              const IncrementalOptions &IncOpts) {
  IncrementalLinSession Inc(Type, IncOpts);
  Trace Prefix;
  for (const Action &A : T) {
    Inc.append(A); // A rejected event dooms the session; keep streaming.
    Prefix.push_back(A);
    LinCheckResult Streamed = Inc.verdict();
    LinCheckResult Batch = checkLinearizable(Prefix, Type);
    ASSERT_EQ(Streamed.Outcome, Batch.Outcome)
        << Type.name() << " prefix of " << Prefix.size()
        << " events (resume=" << IncOpts.Resume << "):\n"
        << formatTrace(Prefix);
  }
}

void runLinFamily(const Adt &Type, const GenOptions &G, unsigned Count,
                  std::uint64_t Seed) {
  Rng R(Seed);
  for (unsigned I = 0; I != Count; ++I) {
    Trace Positive = genLinearizableTrace(Type, G, R);
    Trace Mutated = Positive;
    mutateTrace(Mutated, static_cast<MutationKind>(I % 4), G, R);
    Trace Arbitrary = genArbitraryTrace(G, R);
    for (const Trace *T : {&Positive, &Mutated, &Arbitrary}) {
      expectLinPrefixAgreement(Type, *T, IncrementalOptions{});
      IncrementalOptions NoResume;
      NoResume.Resume = false;
      expectLinPrefixAgreement(Type, *T, NoResume);
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Plain linearizability: all five ADTs.
//===----------------------------------------------------------------------===//

TEST(IncrementalEquivalenceTest, ConsensusPrefixDifferential) {
  ConsensusAdt Cons;
  GenOptions G;
  G.NumClients = 4;
  G.NumOps = 8;
  G.Alphabet = {cons::propose(1), cons::propose(2), cons::propose(3)};
  G.Outputs = {cons::decide(1), cons::decide(2), cons::decide(3)};
  runLinFamily(Cons, G, 20, 0x1E4A);
}

TEST(IncrementalEquivalenceTest, QueuePrefixDifferential) {
  QueueAdt Q;
  GenOptions G;
  G.NumClients = 3;
  G.NumOps = 7;
  G.Alphabet = {queue::enq(1), queue::enq(2), queue::deq()};
  G.Outputs = {Output{1}, Output{2}, Output{NoValue}};
  runLinFamily(Q, G, 20, 0x1E4B);
}

TEST(IncrementalEquivalenceTest, RegisterPrefixDifferential) {
  RegisterAdt Reg;
  GenOptions G;
  G.NumClients = 3;
  G.NumOps = 7;
  G.Alphabet = {reg::read(), reg::write(1), reg::write(2)};
  G.Outputs = {Output{1}, Output{2}, Output{NoValue}};
  runLinFamily(Reg, G, 20, 0x1E4C);
}

TEST(IncrementalEquivalenceTest, KvStorePrefixDifferential) {
  KvStoreAdt Kv;
  GenOptions G;
  G.NumClients = 3;
  G.NumOps = 7;
  G.Alphabet = {kv::put(1, 10), kv::put(1, 20), kv::get(1), kv::del(1)};
  G.Outputs = {Output{10}, Output{20}, Output{NoValue}};
  runLinFamily(Kv, G, 20, 0x1E4D);
}

TEST(IncrementalEquivalenceTest, UniversalPrefixDifferential) {
  UniversalAdt Uni;
  GenOptions G;
  G.NumClients = 3;
  G.NumOps = 6;
  G.Alphabet = {Input{1, 0, 1, 0}, Input{2, 0, 2, 0}, Input{3, 0, 3, 0}};
  G.Outputs = {Output{0}, Output{1}};
  runLinFamily(Uni, G, 15, 0x1E4E);
}

TEST(IncrementalEquivalenceTest, DoomedStreamsAgreeWithBatch) {
  // Ill-formed traces and invalid inputs must doom the stream to exactly
  // the batch verdict of the full trace, and every later prefix.
  ConsensusAdt Cons;
  Trace T;
  T.push_back(makeInvoke(0, 1, cons::propose(1)));
  T.push_back(makeRespond(0, 1, cons::propose(1), cons::decide(1)));
  // Response with no pending invocation: ill-formed from here on.
  T.push_back(makeRespond(0, 1, cons::propose(1), cons::decide(1)));
  T.push_back(makeInvoke(1, 1, cons::propose(2)));
  expectLinPrefixAgreement(Cons, T, IncrementalOptions{});

  // An input the ADT rejects.
  IncrementalLinSession Inc(Cons);
  EXPECT_TRUE(Inc.append(makeInvoke(0, 1, cons::propose(1))));
  EXPECT_FALSE(Inc.append(makeInvoke(1, 1, queue::deq())));
  EXPECT_TRUE(Inc.doomed());
  EXPECT_EQ(Inc.verdict().Outcome, Verdict::No);
}

//===----------------------------------------------------------------------===//
// Speculative linearizability: both relations, both abort readings.
//===----------------------------------------------------------------------===//

namespace {

void expectSlinPrefixAgreement(const Adt &Type, const PhaseSignature &Sig,
                               const InitRelation &Rel, const Trace &T,
                               const SlinCheckOptions &O) {
  IncrementalSlinSession Inc(Type, Sig, Rel);
  Trace Prefix;
  for (const Action &A : T) {
    Inc.append(A);
    Prefix.push_back(A);
    SlinVerdict Streamed = Inc.verdict(O);
    SlinVerdict Batch = checkSlin(Prefix, Sig, Type, Rel, O);
    ASSERT_EQ(Streamed.Outcome, Batch.Outcome)
        << "relation differential at prefix " << Prefix.size()
        << " (atEnd=" << O.AbortValidityAtEnd << "):\n"
        << formatTrace(Prefix);
    ASSERT_EQ(Streamed.Exact, Batch.Exact);
  }
}

} // namespace

TEST(IncrementalEquivalenceTest, SlinUniversalWalkPrefixDifferential) {
  ConsensusAdt Cons;
  for (PhaseId M : {1u, 2u}) {
    PhaseSignature Sig(M, M + 1);
    UniversalInitRelation Rel;
    SpecAutomaton A(Sig, 3);
    SpecAutomaton::WalkOptions W;
    W.Steps = 8;
    W.Alphabet = {cons::propose(1), cons::propose(2)};
    W.InitChoices = {{cons::ghostPropose(1)},
                     {cons::ghostPropose(1), cons::ghostPropose(2)}};
    Rng R(0x51D1 + M);
    for (int I = 0; I != 12; ++I) {
      Trace T = A.randomWalk(W, R, Rel);
      for (bool AtEnd : {false, true}) {
        SlinCheckOptions O;
        O.AbortValidityAtEnd = AtEnd;
        expectSlinPrefixAgreement(Cons, Sig, Rel, T, O);
      }
    }
  }
}

TEST(IncrementalEquivalenceTest, SlinConsensusRelationPrefixDifferential) {
  // Re-target universal walk traces at the consensus relation by remapping
  // switch values into small proposals: mixed-verdict phase traces whose
  // streamed and batch checks must still agree at every prefix.
  ConsensusAdt Cons;
  ConsensusInitRelation ConsRel;
  for (PhaseId M : {1u, 2u}) {
    PhaseSignature Sig(M, M + 1);
    UniversalInitRelation WalkRel;
    SpecAutomaton A(Sig, 3);
    SpecAutomaton::WalkOptions W;
    W.Steps = 8;
    W.Alphabet = {cons::propose(1), cons::propose(2)};
    W.InitChoices = {{cons::ghostPropose(1)},
                     {cons::ghostPropose(1), cons::ghostPropose(2)}};
    Rng R(0x51D3 + M);
    for (int I = 0; I != 10; ++I) {
      Trace T = A.randomWalk(W, R, WalkRel);
      for (Action &Act : T)
        if (isSwitch(Act))
          Act.Sv.Val = 1 + (Act.Sv.Val & 1);
      for (bool AtEnd : {false, true}) {
        SlinCheckOptions O;
        O.AbortValidityAtEnd = AtEnd;
        expectSlinPrefixAgreement(Cons, Sig, ConsRel, T, O);
      }
    }
  }
}

TEST(IncrementalEquivalenceTest, SlinReadingSwitchMidStream) {
  // Changing AbortValidityAtEnd between verdicts of one session is a
  // non-monotone delta: the epoch must move and the verdicts must match a
  // batch check under the newly requested reading.
  ConsensusAdt Cons;
  PhaseSignature Sig(1, 2);
  UniversalInitRelation Rel;
  SpecAutomaton A(Sig, 3);
  SpecAutomaton::WalkOptions W;
  W.Steps = 10;
  W.Alphabet = {cons::propose(1), cons::propose(2)};
  W.InitChoices = {{cons::ghostPropose(1)}};
  Rng R(0x51D7);
  for (int I = 0; I != 8; ++I) {
    Trace T = A.randomWalk(W, R, Rel);
    IncrementalSlinSession Inc(Cons, Sig, Rel);
    Trace Prefix;
    for (std::size_t J = 0; J != T.size(); ++J) {
      Inc.append(T[J]);
      Prefix.push_back(T[J]);
      SlinCheckOptions O;
      O.AbortValidityAtEnd = (J % 2) == 0; // Alternate readings.
      SlinVerdict Streamed = Inc.verdict(O);
      SlinVerdict Batch = checkSlin(Prefix, Sig, Cons, Rel, O);
      ASSERT_EQ(Streamed.Outcome, Batch.Outcome)
          << "reading switch at prefix " << Prefix.size() << ":\n"
          << formatTrace(Prefix);
    }
  }
}
