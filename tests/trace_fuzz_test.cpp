//===- tests/trace_fuzz_test.cpp - Randomized trace-fuzzing harness -------==//
//
// Part of the slin project.
//
//===----------------------------------------------------------------------===//
//
// The randomized lock-down for the incremental sessions' O(1) steady state
// (slin frontier resumption + retained replay state). A seeded trace
// generator covers all five ADTs (lin) and both init relations under both
// Definition 28 readings (slin), with configurable client/phase counts and
// injected aborts and recoveries (spec-automaton walks whose clients abort
// out and switch back in); every generated trace drives a *per-prefix*
// streamed-vs-batch differential:
//
//   * verdict equality — a resumable session asked after every event must
//     agree with a scratch batch check of that prefix, including the
//     dooming paths (corrupted traces are injected on purpose);
//   * for lin, node-count equality across checking schedules — with
//     resumption off, checking after every event and checking the prefix
//     once in a fresh session must spend identical nodes (the incremental
//     obligation builder must not perturb the search). Node counts are
//     compared within the incremental interning discipline: the batch
//     session interns sorted, so its counts are only verdict-comparable
//     (see the warm-session caveat in docs/engine.md).
//
// Every failure message carries the deterministic per-trace seed; re-run a
// single trace with SLIN_FUZZ_SEED=<seed> (and the suite with
// SLIN_FUZZ_TRACES=<n> to scale the budget, e.g. in sanitizer CI).
//
// The file also hosts the retained-replay-state property test: after any
// interleaving of append/verdict/markPrefix/rewindToMark/reset, the cached
// AdtState at the frontier must be bit-equivalent (clone + canonical
// serialization) to a fresh replay of the retained master.
//
//===----------------------------------------------------------------------===//

#include "adt/Consensus.h"
#include "adt/KvStore.h"
#include "adt/Queue.h"
#include "adt/Register.h"
#include "adt/Universal.h"
#include "engine/Incremental.h"
#include "spec/SpecAutomaton.h"
#include "trace/Gen.h"
#include "trace/TraceIo.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>

using namespace slin;

namespace {

std::uint64_t baseSeed() {
  if (const char *S = std::getenv("SLIN_FUZZ_SEED"))
    return std::strtoull(S, nullptr, 0);
  return 0xF0221ull;
}

/// Per-test trace budget; SLIN_FUZZ_TRACES overrides (sanitizer CI shrinks
/// it, soak runs raise it). The defaults put the whole suite at >= 1000
/// seeded traces.
unsigned traceBudget(unsigned Default) {
  if (const char *S = std::getenv("SLIN_FUZZ_TRACES"))
    return static_cast<unsigned>(std::strtoul(S, nullptr, 0));
  return Default;
}

std::string seedNote(std::uint64_t TraceSeed, unsigned Index) {
  std::ostringstream Os;
  Os << "trace seed 0x" << std::hex << TraceSeed << std::dec << " (index "
     << Index << ", base seed 0x" << std::hex << baseSeed()
     << "; reproduce via SLIN_FUZZ_SEED)";
  return Os.str();
}

/// One ADT's generator configuration for the lin fuzz family.
struct LinFixture {
  const Adt &Type;
  std::vector<Input> Alphabet;
  std::vector<Output> Outputs;
};

/// Draws one randomized trace: the family rotates through
/// linearizable-by-construction, mutated, arbitrary, and corrupted
/// (ill-formed on purpose, exercising the dooming path).
Trace drawLinTrace(const LinFixture &Fx, unsigned Index, Rng &R) {
  GenOptions G;
  G.NumClients = 2 + static_cast<unsigned>(R.next() % 3); // 2..4
  G.NumOps = 4 + static_cast<unsigned>(R.next() % 6);     // 4..9
  G.PendingFraction = (R.next() % 3) * 0.2;
  G.Alphabet = Fx.Alphabet;
  G.Outputs = Fx.Outputs;
  Trace T;
  switch (Index % 4) {
  case 0:
    T = genLinearizableTrace(Fx.Type, G, R);
    break;
  case 1:
    T = genLinearizableTrace(Fx.Type, G, R);
    mutateTrace(T, static_cast<MutationKind>(R.next() % 4), G, R);
    break;
  case 2:
    T = genArbitraryTrace(G, R);
    break;
  default:
    // Corrupted: duplicate a response (ill-formed at the duplicate), or
    // respond for a client with nothing pending.
    T = genLinearizableTrace(Fx.Type, G, R);
    if (!T.empty()) {
      std::size_t At = R.next() % T.size();
      for (std::size_t I = 0; I != T.size(); ++I) {
        std::size_t J = (At + I) % T.size();
        if (isRespond(T[J])) {
          T.insert(T.begin() + static_cast<std::ptrdiff_t>(J) + 1, T[J]);
          break;
        }
      }
    }
    break;
  }
  return T;
}

/// The per-prefix streamed-vs-batch differential for one lin trace, plus
/// the schedule node-count parity check.
void fuzzLinTrace(const LinFixture &Fx, const Trace &T) {
  IncrementalLinSession Resumed(Fx.Type);
  IncrementalOptions NoResumeOpts;
  NoResumeOpts.Resume = false;
  IncrementalLinSession Streamed(Fx.Type, NoResumeOpts);

  Trace Prefix;
  for (const Action &A : T) {
    Resumed.append(A); // Rejected events doom the session; keep streaming.
    Streamed.append(A);
    Prefix.push_back(A);

    LinCheckResult FromResumed = Resumed.verdict();
    LinCheckResult Batch = checkLinearizable(Prefix, Fx.Type);
    ASSERT_EQ(FromResumed.Outcome, Batch.Outcome)
        << Fx.Type.name() << ": resumable session disagrees with batch at "
        << "prefix " << Prefix.size() << ":\n"
        << formatTrace(Prefix);

    LinCheckResult FromStreamed = Streamed.verdict();
    ASSERT_EQ(FromStreamed.Outcome, Batch.Outcome)
        << Fx.Type.name() << ": resumption-free session disagrees with "
        << "batch at prefix " << Prefix.size() << ":\n"
        << formatTrace(Prefix);

    // Node-count parity across checking schedules: a fresh session fed the
    // whole prefix and asked once must spend exactly the nodes the
    // per-event session spent on this verdict.
    IncrementalLinSession Fresh(Fx.Type, NoResumeOpts);
    for (const Action &B : Prefix)
      Fresh.append(B);
    LinCheckResult Once = Fresh.verdict();
    ASSERT_EQ(FromStreamed.Outcome, Once.Outcome);
    ASSERT_EQ(FromStreamed.NodesExplored, Once.NodesExplored)
        << Fx.Type.name() << ": checking schedule perturbed the search at "
        << "prefix " << Prefix.size() << ":\n"
        << formatTrace(Prefix);
  }
}

void runLinFuzz(const LinFixture &Fx, std::uint64_t FamilyTag) {
  unsigned N = traceBudget(220);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed =
        hashCombine(hashCombine(baseSeed(), FamilyTag), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    fuzzLinTrace(Fx, drawLinTrace(Fx, I, R));
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Plain linearizability: all five ADTs, every prefix, every family.
//===----------------------------------------------------------------------===//

TEST(TraceFuzzTest, LinFuzz_Consensus) {
  ConsensusAdt Cons;
  runLinFuzz({Cons,
              {cons::propose(1), cons::propose(2), cons::propose(3)},
              {cons::decide(1), cons::decide(2), cons::decide(3)}},
             0x11);
}

TEST(TraceFuzzTest, LinFuzz_Queue) {
  QueueAdt Q;
  runLinFuzz({Q,
              {queue::enq(1), queue::enq(2), queue::deq()},
              {Output{1}, Output{2}, Output{NoValue}}},
             0x12);
}

TEST(TraceFuzzTest, LinFuzz_Register) {
  RegisterAdt Reg;
  runLinFuzz({Reg,
              {reg::read(), reg::write(1), reg::write(2)},
              {Output{1}, Output{2}, Output{NoValue}}},
             0x13);
}

TEST(TraceFuzzTest, LinFuzz_KvStore) {
  KvStoreAdt Kv;
  runLinFuzz({Kv,
              {kv::put(1, 10), kv::put(1, 20), kv::get(1), kv::del(1)},
              {Output{10}, Output{20}, Output{NoValue}}},
             0x14);
}

TEST(TraceFuzzTest, LinFuzz_Universal) {
  UniversalAdt Uni;
  runLinFuzz({Uni,
              {Input{1, 0, 1, 0}, Input{2, 0, 2, 0}, Input{3, 0, 3, 0}},
              {Output{0}, Output{1}}},
             0x15);
}

//===----------------------------------------------------------------------===//
// Windowed monitoring past the 64-obligation ceiling: obligation
// retirement on >64-obligation streamed traces. Up to the window (first 64
// responses) the windowed session must agree with batch exactly; past it —
// where batch checking is structurally impossible — soundness is checked
// directly: every Yes witness (retired prefix ++ live chain) must
// replay-validate against the full trace, a non-doomed session must never
// answer No once obligations were retired (only the stable WindowRetired /
// overflow Unknowns), linearizable-by-construction streams must stay
// definitively Yes at every prefix, and the live window high-water must
// stay bounded.
//===----------------------------------------------------------------------===//

namespace {

/// A linearizable trace of \p Ops operations arranged in fully-quiescing
/// rounds of 1..MaxConc concurrent operations: every round boundary is a
/// quiescence cut, so the windowed session can keep retiring forever.
/// Outputs come from applying the inputs in invocation order. MaxConc = 1
/// for ADTs whose in-round ordering ambiguity can outlive the window
/// (queue enqueue order is observed arbitrarily much later) — a pinned
/// retired prefix would then degrade definitive Yes into the WindowRetired
/// Unknown, which is sound but not what the clean family asserts.
Trace quiescingTrace(const LinFixture &Fx, unsigned Ops, unsigned MaxConc,
                     Rng &R) {
  std::unique_ptr<AdtState> S = Fx.Type.makeState();
  Trace T;
  for (unsigned I = 0; I < Ops;) {
    unsigned RoundOps = 1 + static_cast<unsigned>(R.next() % MaxConc);
    RoundOps = std::min(RoundOps, Ops - I);
    std::vector<Input> Ins;
    for (unsigned C = 0; C != RoundOps; ++C) {
      Ins.push_back(Fx.Alphabet[R.next() % Fx.Alphabet.size()]);
      T.push_back(makeInvoke(C, 1, Ins.back()));
    }
    for (unsigned C = 0; C != RoundOps; ++C)
      T.push_back(makeRespond(C, 1, Ins[C], S->apply(Ins[C])));
    I += RoundOps;
  }
  return T;
}

/// Streams \p T through a windowed session, checking the windowed-vs-batch
/// contract at every prefix. \p ExpectDefinitiveYes asserts the
/// linearizable-by-construction property (no Unknown ever).
void fuzzWindowedLinTrace(const LinFixture &Fx, const Trace &T,
                          bool ExpectDefinitiveYes) {
  IncrementalLinSession Inc(Fx.Type);
  Trace Prefix;
  std::size_t NumResponses = 0;
  for (const Action &A : T) {
    Inc.append(A);
    Prefix.push_back(A);
    if (isRespond(A))
      ++NumResponses;
    LinCheckResult R = Inc.verdict();
    if (NumResponses <= 64 && Inc.retiredObligations() == 0) {
      // Up to the window: bit-identical verdicts to batch checking.
      LinCheckResult Batch = checkLinearizable(Prefix, Fx.Type);
      ASSERT_EQ(R.Outcome, Batch.Outcome)
          << Fx.Type.name() << ": windowed session disagrees with batch at "
          << "prefix " << Prefix.size() << ":\n"
          << formatTrace(Prefix);
    }
    // Past the window, soundness is checked directly, not differentially.
    if (R.Outcome == Verdict::Yes) {
      WellFormedness V = verifyLinWitness(Prefix, Fx.Type, R.Witness);
      ASSERT_TRUE(bool(V))
          << Fx.Type.name() << ": Yes witness failed replay validation at "
          << "prefix " << Prefix.size() << " (" << V.Reason
          << "); retired=" << Inc.retiredObligations() << ":\n"
          << formatTrace(Prefix);
    } else if (R.Outcome == Verdict::No) {
      ASSERT_TRUE(Inc.doomed() || Inc.retiredObligations() == 0)
          << Fx.Type.name() << ": unsound No past retirement at prefix "
          << Prefix.size() << ":\n"
          << formatTrace(Prefix);
    } else {
      ASSERT_TRUE(R.Reason == WindowRetiredReason ||
                  R.Reason == WindowOverflowReason ||
                  R.Reason == WindowBoundedReason || R.BudgetLimited)
          << "unexpected Unknown reason: " << R.Reason;
      if (R.Grade == VerdictGrade::BoundedYes) {
        // A graded Unknown claims the first-64 restriction linearizes:
        // batch checking the restriction (every action except the responds
        // past the 64th live obligation) must then never say No.
        ASSERT_EQ(R.Reason, WindowBoundedReason);
        ASSERT_GT(R.Interference, 0u);
      }
    }
    if (ExpectDefinitiveYes)
      ASSERT_EQ(R.Outcome, Verdict::Yes)
          << Fx.Type.name() << ": lost the definitive verdict at prefix "
          << Prefix.size() << " (reason: " << R.Reason
          << ", retired=" << Inc.retiredObligations()
          << ", window=" << Inc.liveWindow() << ")";
    ASSERT_LE(Inc.liveWindow(), 64u);
  }
  if (ExpectDefinitiveYes) {
    ASSERT_GT(Inc.retiredObligations(), 0u)
        << Fx.Type.name()
        << ": a >64-obligation definitive run must have retired";
    ASSERT_LE(Inc.stats().LiveWindowHighWater, 64u);
    ASSERT_EQ(Inc.stats().WindowOverflows, 0u);
  }
}

void runWindowedLinFuzz(const LinFixture &Fx, std::uint64_t FamilyTag,
                        unsigned MaxConc) {
  // Long traces are ~20x the cost of the short-family ones; derive the
  // budget from the shared knob at that ratio so SLIN_FUZZ_TRACES scales
  // this family *down* in sanitizer CI like the others.
  unsigned N = std::max(4u, traceBudget(220) / 18);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed =
        hashCombine(hashCombine(baseSeed(), FamilyTag), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    unsigned Ops = 70 + static_cast<unsigned>(R.next() % 40); // > 64 always.
    Trace T = quiescingTrace(Fx, Ops, MaxConc, R);
    switch (I % 3) {
    case 0:
      // Clean: stays definitively Yes past the ceiling.
      fuzzWindowedLinTrace(Fx, T, /*ExpectDefinitiveYes=*/true);
      break;
    case 1: {
      // Corrupted in the suffix (duplicate response — ill-formed): the
      // doom path must still conclude No past retirement, never hide
      // behind a WindowRetired Unknown ("batch on the retired-prefix-free
      // suffix says No").
      std::size_t From = T.size() * 3 / 4;
      for (std::size_t J = From; J != T.size(); ++J)
        if (isRespond(T[J])) {
          T.insert(T.begin() + static_cast<std::ptrdiff_t>(J) + 1, T[J]);
          break;
        }
      fuzzWindowedLinTrace(Fx, T, /*ExpectDefinitiveYes=*/false);
      break;
    }
    default: {
      // Mutated output deep in the suffix (well-formed but wrong): the
      // session may answer No only before anything retired; afterwards
      // the WindowRetired Unknown is the sound degradation.
      for (std::size_t J = T.size(); J-- > T.size() * 3 / 4;)
        if (isRespond(T[J])) {
          T[J].Out = Output{T[J].Out.Val == NoValue ? 1 : T[J].Out.Val + 1};
          break;
        }
      fuzzWindowedLinTrace(Fx, T, /*ExpectDefinitiveYes=*/false);
      break;
    }
    }
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

} // namespace

TEST(TraceFuzzTest, WindowedLinFuzz_Register) {
  RegisterAdt Reg;
  runWindowedLinFuzz({Reg,
                      {reg::read(), reg::write(1), reg::write(2)},
                      {Output{1}, Output{2}, Output{NoValue}}},
                     0x41, /*MaxConc=*/4);
}

TEST(TraceFuzzTest, WindowedLinFuzz_KvStore) {
  KvStoreAdt Kv;
  runWindowedLinFuzz({Kv,
                      {kv::put(1, 10), kv::put(1, 20), kv::get(1), kv::del(1)},
                      {Output{10}, Output{20}, Output{NoValue}}},
                     0x42, /*MaxConc=*/4);
}

TEST(TraceFuzzTest, WindowedLinFuzz_Queue) {
  QueueAdt Q;
  // Sequential stream: concurrent enqueue order is observed arbitrarily
  // far in the future, which a pinned retired prefix cannot stay
  // definitive about.
  runWindowedLinFuzz({Q,
                      {queue::enq(1), queue::enq(2), queue::deq()},
                      {Output{1}, Output{2}, Output{NoValue}}},
                     0x43, /*MaxConc=*/1);
}

TEST(TraceFuzzTest, WindowedLinFuzz_Consensus) {
  ConsensusAdt Cons;
  runWindowedLinFuzz({Cons,
                      {cons::propose(1), cons::propose(2), cons::propose(3)},
                      {cons::decide(1), cons::decide(2), cons::decide(3)}},
                     0x44, /*MaxConc=*/4);
}

TEST(TraceFuzzTest, WindowedLinFuzz_Universal) {
  UniversalAdt Uni;
  runWindowedLinFuzz({Uni,
                      {Input{1, 0, 1, 0}, Input{2, 0, 2, 0}},
                      {Output{0}, Output{1}}},
                     0x45, /*MaxConc=*/1);
}

//===----------------------------------------------------------------------===//
// Data-oriented hot path: the SoA LiveWindow + in-session fast path must be
// observationally identical to the reference buildProblem() path. Every
// lin fuzz family streams through two sessions differing only in
// IncrementalOptions::DataOriented; verdicts, reasons, node counts, and
// witness shapes must match bit-for-bit at every prefix — both with
// witness materialization (pure view-vs-copy differential) and without it
// (the tryFastResume emulation differential), on short mixed traces and on
// >64-obligation retiring streams alike.
//===----------------------------------------------------------------------===//

namespace {

/// Per-prefix differential between the SoA view path (DataOriented on,
/// the default) and the reference materializing path (off).
void fuzzDataOrientedTrace(const LinFixture &Fx, const Trace &T,
                           bool WantWitness) {
  IncrementalLinSession Soa(Fx.Type);
  IncrementalOptions RefOpts;
  RefOpts.DataOriented = false;
  IncrementalLinSession Ref(Fx.Type, RefOpts);
  LinCheckOptions Limits;
  Limits.WantWitness = WantWitness;

  std::size_t Prefix = 0;
  for (const Action &A : T) {
    Soa.append(A);
    Ref.append(A);
    ++Prefix;
    LinCheckResult S = Soa.verdict(Limits);
    LinCheckResult R = Ref.verdict(Limits);
    ASSERT_EQ(S.Outcome, R.Outcome)
        << Fx.Type.name() << ": SoA path verdict diverged from the "
        << "reference path at prefix " << Prefix
        << " (WantWitness=" << WantWitness << "):\n"
        << formatTrace(T);
    ASSERT_EQ(S.NodesExplored, R.NodesExplored)
        << Fx.Type.name() << ": SoA path node count diverged at prefix "
        << Prefix << " (WantWitness=" << WantWitness << ", outcome "
        << int(S.Outcome) << "):\n"
        << formatTrace(T);
    ASSERT_EQ(S.Reason, R.Reason);
    ASSERT_EQ(S.BudgetLimited, R.BudgetLimited);
    if (WantWitness && S.Outcome == Verdict::Yes) {
      ASSERT_EQ(S.Witness.Master.size(), R.Witness.Master.size());
      ASSERT_EQ(S.Witness.Commits, R.Witness.Commits)
          << Fx.Type.name() << ": witness commit map diverged at prefix "
          << Prefix;
    }
  }
}

void runDataOrientedFuzz(const LinFixture &Fx, std::uint64_t FamilyTag,
                         unsigned MaxConc) {
  // Short mixed families (linearizable / mutated / arbitrary / corrupted).
  unsigned N = traceBudget(160);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed =
        hashCombine(hashCombine(baseSeed(), FamilyTag), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    Trace T = drawLinTrace(Fx, I, R);
    fuzzDataOrientedTrace(Fx, T, /*WantWitness=*/I % 2 == 0);
    if (::testing::Test::HasFatalFailure())
      return;
  }
  // Retiring streams: >64 obligations exercise fold/retire and the
  // steady-state fast path in the SoA session. Witness-free runs must
  // actually hit the fast path — otherwise this differential is vacuous.
  unsigned Long = std::max(2u, traceBudget(160) / 40);
  for (unsigned I = 0; I != Long; ++I) {
    std::uint64_t TraceSeed =
        hashCombine(hashCombine(baseSeed(), FamilyTag ^ 0x100), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    unsigned Ops = 70 + static_cast<unsigned>(R.next() % 30);
    Trace T = quiescingTrace(Fx, Ops, MaxConc, R);
    bool WantWitness = I % 2 == 1;
    IncrementalLinSession Probe(Fx.Type);
    fuzzDataOrientedTrace(Fx, T, WantWitness);
    if (!WantWitness) {
      // Re-stream through one SoA session to observe the fast-path
      // counter (the differential's sessions are scoped to the helper).
      LinCheckOptions Limits;
      Limits.WantWitness = false;
      for (const Action &A : T) {
        Probe.append(A);
        Probe.verdict(Limits);
      }
      EXPECT_GT(Probe.stats().FastPathVerdicts, 0u)
          << Fx.Type.name()
          << ": witness-free retiring stream never took the fast path";
    }
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

} // namespace

TEST(TraceFuzzTest, DataOrientedDifferential_Register) {
  RegisterAdt Reg;
  runDataOrientedFuzz({Reg,
                       {reg::read(), reg::write(1), reg::write(2)},
                       {Output{1}, Output{2}, Output{NoValue}}},
                      0x61, /*MaxConc=*/4);
}

TEST(TraceFuzzTest, DataOrientedDifferential_Queue) {
  QueueAdt Q;
  runDataOrientedFuzz({Q,
                       {queue::enq(1), queue::enq(2), queue::deq()},
                       {Output{1}, Output{2}, Output{NoValue}}},
                      0x62, /*MaxConc=*/1);
}

TEST(TraceFuzzTest, DataOrientedDifferential_KvStore) {
  KvStoreAdt Kv;
  runDataOrientedFuzz({Kv,
                       {kv::put(1, 10), kv::put(1, 20), kv::get(1), kv::del(1)},
                       {Output{10}, Output{20}, Output{NoValue}}},
                      0x63, /*MaxConc=*/4);
}

TEST(TraceFuzzTest, DataOrientedDifferential_Consensus) {
  ConsensusAdt Cons;
  runDataOrientedFuzz({Cons,
                       {cons::propose(1), cons::propose(2), cons::propose(3)},
                       {cons::decide(1), cons::decide(2), cons::decide(3)}},
                      0x64, /*MaxConc=*/4);
}

TEST(TraceFuzzTest, DataOrientedDifferential_Universal) {
  UniversalAdt Uni;
  runDataOrientedFuzz({Uni,
                       {Input{1, 0, 1, 0}, Input{2, 0, 2, 0}},
                       {Output{0}, Output{1}}},
                      0x65, /*MaxConc=*/1);
}

//===----------------------------------------------------------------------===//
// Speculative linearizability: both relations, both readings, injected
// aborts and recoveries.
//===----------------------------------------------------------------------===//

namespace {

/// Draws one randomized phase-trace walk: client count, walk length, and
/// abort pressure vary per seed; switch-ins after aborts are the recovery
/// events of the next phase's clients.
Trace drawSlinWalk(const PhaseSignature &Sig, UniversalInitRelation &WalkRel,
                   Rng &R) {
  SpecAutomaton A(Sig, 2 + static_cast<unsigned>(R.next() % 3)); // 2..4
  SpecAutomaton::WalkOptions W;
  W.Steps = 6 + static_cast<unsigned>(R.next() % 7); // 6..12
  W.Alphabet = {cons::propose(1), cons::propose(2)};
  W.InitChoices = {{cons::ghostPropose(1)},
                   {cons::ghostPropose(1), cons::ghostPropose(2)}};
  W.AbortProbability = (R.next() % 3) * 0.2; // 0, 0.2, 0.4
  W.SilentProbability = (R.next() % 2) * 0.1;
  return A.randomWalk(W, R, WalkRel);
}

void fuzzSlinTrace(const Adt &Type, const PhaseSignature &Sig,
                   const InitRelation &Rel, const Trace &T,
                   const SlinCheckOptions &O, bool AlsoNoResume) {
  IncrementalSlinSession Inc(Type, Sig, Rel);
  IncrementalOptions NoResumeOpts;
  NoResumeOpts.Resume = false;
  IncrementalSlinSession Ref(Type, Sig, Rel, NoResumeOpts);
  Trace Prefix;
  for (const Action &A : T) {
    Inc.append(A);
    Prefix.push_back(A);
    SlinVerdict Streamed = Inc.verdict(O);
    SlinVerdict Batch = checkSlin(Prefix, Sig, Type, Rel, O);
    ASSERT_EQ(Streamed.Outcome, Batch.Outcome)
        << "slin streamed-vs-batch mismatch at prefix " << Prefix.size()
        << " (atEnd=" << O.AbortValidityAtEnd << "):\n"
        << formatTrace(Prefix);
    ASSERT_EQ(Streamed.Exact, Batch.Exact);
    if (AlsoNoResume) {
      Ref.append(A);
      SlinVerdict Reference = Ref.verdict(O);
      ASSERT_EQ(Reference.Outcome, Batch.Outcome)
          << "slin reference-mode mismatch at prefix " << Prefix.size()
          << ":\n"
          << formatTrace(Prefix);
    }
  }
}

} // namespace

TEST(TraceFuzzTest, SlinFuzz_UniversalRelation) {
  ConsensusAdt Cons;
  unsigned N = traceBudget(260);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed = hashCombine(hashCombine(baseSeed(), 0x21), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    PhaseId M = 1 + (I % 2);
    PhaseSignature Sig(M, M + 1);
    UniversalInitRelation Rel;
    Trace T = drawSlinWalk(Sig, Rel, R);
    SlinCheckOptions O;
    O.AbortValidityAtEnd = (I / 2) % 2 == 1; // Both readings over the run.
    fuzzSlinTrace(Cons, Sig, Rel, T, O, /*AlsoNoResume=*/I % 4 == 0);
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

TEST(TraceFuzzTest, SlinFuzz_ConsensusRelation) {
  // Walk traces re-targeted at the consensus relation by remapping switch
  // values into small proposals: mixed-verdict phase traces whose streamed
  // and batch checks must agree at every prefix under both readings.
  ConsensusAdt Cons;
  ConsensusInitRelation ConsRel;
  unsigned N = traceBudget(200);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed = hashCombine(hashCombine(baseSeed(), 0x22), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    PhaseId M = 1 + (I % 2);
    PhaseSignature Sig(M, M + 1);
    UniversalInitRelation WalkRel;
    Trace T = drawSlinWalk(Sig, WalkRel, R);
    for (Action &Act : T)
      if (isSwitch(Act))
        Act.Sv.Val = 1 + (Act.Sv.Val & 1);
    SlinCheckOptions O;
    O.AbortValidityAtEnd = I % 2 == 1;
    fuzzSlinTrace(Cons, Sig, ConsRel, T, O, /*AlsoNoResume=*/I % 5 == 0);
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

TEST(TraceFuzzTest, WindowedSlinFuzz_SwitchFreeConsensus) {
  // The slin session past the 64-response ceiling: abort-free, switch-free
  // consensus phase streams (the composed whole-object monitoring shape —
  // a single stable interpretation) must agree with batch checkSlin while
  // the whole history fits the window and stay definitively Yes past it,
  // retiring continuously under both Definition 28 readings.
  ConsensusAdt Cons;
  PhaseSignature Sig(1, 2);
  ConsensusInitRelation Rel;
  unsigned N = std::max(2u, traceBudget(220) / 55);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed = hashCombine(hashCombine(baseSeed(), 0x51), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    std::unique_ptr<AdtState> S = Cons.makeState();
    IncrementalSlinSession Inc(Cons, Sig, Rel);
    SlinCheckOptions O;
    O.AbortValidityAtEnd = I % 2 == 1;
    Trace Prefix;
    unsigned Ops = 70 + static_cast<unsigned>(R.next() % 30);
    for (unsigned K = 0; K != Ops; ++K) {
      Input In = cons::propose(1 + static_cast<std::int64_t>(R.next() % 3));
      Output Out = S->apply(In);
      ClientId C = K % 3;
      for (const Action &A :
           {makeInvoke(C, 1, In), makeRespond(C, 1, In, Out)}) {
        Inc.append(A);
        Prefix.push_back(A);
        SlinVerdict V = Inc.verdict(O);
        if (Inc.retiredObligations() == 0 && K < 64) {
          SlinVerdict Batch = checkSlin(Prefix, Sig, Cons, Rel, O);
          ASSERT_EQ(V.Outcome, Batch.Outcome)
              << "windowed slin disagrees with batch at prefix "
              << Prefix.size();
        }
        ASSERT_EQ(V.Outcome, Verdict::Yes)
            << "slin lost the definitive verdict at prefix " << Prefix.size()
            << " (reason: " << V.Reason
            << ", retired=" << Inc.retiredObligations() << ")";
        ASSERT_LE(Inc.liveWindow(), 64u);
      }
      if (::testing::Test::HasFatalFailure())
        return;
    }
    ASSERT_GT(Inc.retiredObligations(), 0u);
    ASSERT_EQ(Inc.stats().WindowOverflows, 0u);
  }
}

TEST(TraceFuzzTest, WindowedSlinFuzz_StragglerOverflowDrain) {
  // More than 64 completions overlap one straggling invocation, pinning
  // the quiescent cut at index 0 (nothing ever retires while it is open).
  // Pinned verdicts must be the graded BoundedYes — whose claim ("the
  // first 64 live obligations linearize under every interpretation") is
  // checked against batch checkSlin on the restricted prefix — and once
  // the straggler completes, the overflow drain must retire the backlog
  // and agree with batch checkSlin on the full trace, with the excursion
  // counted exactly once.
  ConsensusAdt Cons;
  PhaseSignature Sig(1, 2);
  ConsensusInitRelation Rel;
  unsigned N = std::max(2u, traceBudget(220) / 55);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed = hashCombine(hashCombine(baseSeed(), 0x5E9), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    std::unique_ptr<AdtState> S = Cons.makeState();
    IncrementalOptions SessOpts;
    SessOpts.InterferenceBound = 32;
    IncrementalSlinSession Inc(Cons, Sig, Rel, SessOpts);
    SlinCheckOptions O;
    O.AbortValidityAtEnd = I % 2 == 1;
    Trace Prefix;
    // The straggler invokes first and stays open; it linearizes last.
    Input Pin = cons::propose(7);
    Action PinInvoke = makeInvoke(9, 1, Pin);
    Inc.append(PinInvoke);
    Prefix.push_back(PinInvoke);
    unsigned Ops = 66 + static_cast<unsigned>(R.next() % 20);
    bool SawBounded = false;
    for (unsigned K = 0; K != Ops; ++K) {
      Input In = cons::propose(1 + static_cast<std::int64_t>(R.next() % 3));
      Output Out = S->apply(In);
      ClientId C = K % 3;
      for (const Action &A :
           {makeInvoke(C, 1, In), makeRespond(C, 1, In, Out)}) {
        Inc.append(A);
        Prefix.push_back(A);
      }
      SlinVerdict V = Inc.verdict(O);
      if (Inc.liveWindow() <= 64) {
        ASSERT_EQ(V.Outcome, Verdict::Yes)
            << "pre-overflow verdict lost at op " << K << " (reason: "
            << V.Reason << ")";
      } else {
        ASSERT_EQ(V.Outcome, Verdict::Unknown) << "op " << K;
        ASSERT_EQ(V.Grade, VerdictGrade::BoundedYes)
            << "pinned verdict not graded at op " << K << " (reason: "
            << V.Reason << ")";
        ASSERT_EQ(V.Reason, WindowBoundedReason);
        ASSERT_EQ(V.Interference, Inc.liveWindow() - 64);
        SawBounded = true;
      }
      if (::testing::Test::HasFatalFailure())
        return;
    }
    ASSERT_TRUE(SawBounded);
    ASSERT_EQ(Inc.stats().WindowOverflows, 1u);
    ASSERT_GE(Inc.stats().BoundedYesVerdicts, 1u);
    // BoundedYes soundness: the restriction the grade vouches for — the
    // trace cut after its 64th completion (a prefix, so well-formed; the
    // engine never linearizes open invocations, so its sub-Yes implies
    // this prefix's completions linearize) — must not be a batch No.
    Trace Restricted;
    std::size_t Completions = 0;
    for (const Action &A : Prefix) {
      Restricted.push_back(A);
      if (isRespond(A) && ++Completions == 64)
        break;
    }
    SlinVerdict RestrictedBatch = checkSlin(Restricted, Sig, Cons, Rel, O);
    ASSERT_NE(RestrictedBatch.Outcome, Verdict::No)
        << "BoundedYes contradicted batch on the restricted prefix:\n"
        << formatTrace(Restricted);
    // The straggler completes; the drain retires the backlog. Batch
    // checkSlin refuses > 64 responses outright, so past the window
    // soundness is checked directly (like the windowed lin family): the
    // stream is linearizable by construction — outputs come from one
    // sequential model in program order — so the drained verdict must be
    // definitively Yes, not a degraded Unknown.
    Output PinOut = S->apply(Pin);
    Action PinRespond = makeRespond(9, 1, Pin, PinOut);
    Inc.append(PinRespond);
    Prefix.push_back(PinRespond);
    SlinVerdict Drained = Inc.verdict(O);
    ASSERT_EQ(Drained.Outcome, Verdict::Yes)
        << "drain failed to recover the definitive verdict (reason: "
        << Drained.Reason << "):\n"
        << formatTrace(Prefix);
    ASSERT_EQ(Drained.Grade, VerdictGrade::Yes);
    ASSERT_GT(Inc.retiredObligations(), 0u);
    ASSERT_LE(Inc.liveWindow(), 64u);
    ASSERT_EQ(Inc.stats().WindowOverflows, 1u)
        << "a single excursion must be counted once";
    // And the steady state continues definitively after the excursion.
    for (unsigned K = 0; K != 4; ++K) {
      Input In = cons::propose(2);
      Output Out = S->apply(In);
      ClientId C = K % 3;
      for (const Action &A :
           {makeInvoke(C, 1, In), makeRespond(C, 1, In, Out)}) {
        Inc.append(A);
        Prefix.push_back(A);
      }
      SlinVerdict V = Inc.verdict(O);
      ASSERT_EQ(V.Outcome, Verdict::Yes)
          << "steady state lost the definitive verdict after the drain at "
          << "op " << K << " (reason: " << V.Reason << ")";
    }
  }
}

//===----------------------------------------------------------------------===//
// Slin data-oriented hot path: the shared SoA window + per-interpretation
// overlay rows + family fast path (DataOriented on, the default) must be
// observationally identical to the reference owning-problem path (off) —
// verdicts, exactness, reasons, node counts, and full per-interpretation
// witnesses, at every prefix, across both relations and both Definition 28
// readings. Long abort-free streams additionally pin that the slin fast
// path actually fires (FastPathVerdicts advances) — otherwise the
// differential would be vacuous on the steady state it exists to protect.
//===----------------------------------------------------------------------===//

namespace {

/// How the per-prefix verdicts of the slin differential ask for witnesses.
enum class WitnessMode { Always, Never, Mixed };

/// Per-prefix differential between the slin SoA/fast-path session and the
/// reference materializing path. Mixed mode alternates witness-free and
/// witness-carrying verdicts in one session, which drives the fast path's
/// deferred witness refresh: a witness-carrying absorption after fast-path
/// verdicts must rebuild exactly the witnesses the reference path carried
/// all along.
void fuzzSlinDataOrientedTrace(const Adt &Type, const PhaseSignature &Sig,
                               const InitRelation &Rel, const Trace &T,
                               SlinCheckOptions O, WitnessMode Mode) {
  IncrementalSlinSession Soa(Type, Sig, Rel);
  IncrementalOptions RefOpts;
  RefOpts.DataOriented = false;
  IncrementalSlinSession Ref(Type, Sig, Rel, RefOpts);
  std::size_t Prefix = 0;
  for (const Action &A : T) {
    Soa.append(A);
    Ref.append(A);
    ++Prefix;
    O.WantWitness = Mode == WitnessMode::Always ||
                    (Mode == WitnessMode::Mixed && Prefix % 8 == 0);
    SlinVerdict S = Soa.verdict(O);
    SlinVerdict R = Ref.verdict(O);
    ASSERT_EQ(S.Outcome, R.Outcome)
        << "slin SoA verdict diverged from the reference path at prefix "
        << Prefix << " (atEnd=" << O.AbortValidityAtEnd
        << ", wantWitness=" << O.WantWitness << "):\n"
        << formatTrace(T);
    ASSERT_EQ(S.Exact, R.Exact)
        << "slin exactness diverged at prefix " << Prefix;
    ASSERT_EQ(S.NodesExplored, R.NodesExplored)
        << "slin SoA node count diverged at prefix " << Prefix
        << " (outcome " << int(S.Outcome) << "):\n"
        << formatTrace(T);
    ASSERT_EQ(S.Reason, R.Reason)
        << "slin reason diverged at prefix " << Prefix;
    ASSERT_EQ(S.Grade, R.Grade)
        << "slin verdict grade diverged at prefix " << Prefix;
    ASSERT_EQ(S.Interference, R.Interference)
        << "slin bounded-interference count diverged at prefix " << Prefix;
    ASSERT_EQ(S.BudgetLimited, R.BudgetLimited);
    ASSERT_EQ(S.Witnesses.size(), R.Witnesses.size())
        << "witness count diverged at prefix " << Prefix;
    for (std::size_t W = 0; W != S.Witnesses.size(); ++W) {
      ASSERT_EQ(S.Witnesses[W].first, R.Witnesses[W].first)
          << "interpretation assignment diverged at prefix " << Prefix;
      ASSERT_EQ(S.Witnesses[W].second.Master, R.Witnesses[W].second.Master)
          << "witness master diverged at prefix " << Prefix << ":\n"
          << formatTrace(T);
      ASSERT_EQ(S.Witnesses[W].second.Commits,
                R.Witnesses[W].second.Commits)
          << "witness commit map diverged at prefix " << Prefix;
      ASSERT_EQ(S.Witnesses[W].second.Aborts, R.Witnesses[W].second.Aborts)
          << "witness abort assignment diverged at prefix " << Prefix;
    }
  }
}

} // namespace

TEST(TraceFuzzTest, SlinDataOrientedDifferential_UniversalRelation) {
  ConsensusAdt Cons;
  unsigned N = traceBudget(200);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed = hashCombine(hashCombine(baseSeed(), 0x71), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    PhaseId M = 1 + (I % 2);
    PhaseSignature Sig(M, M + 1);
    UniversalInitRelation Rel;
    Trace T = drawSlinWalk(Sig, Rel, R);
    SlinCheckOptions O;
    O.AbortValidityAtEnd = (I / 2) % 2 == 1; // Both readings over the run.
    fuzzSlinDataOrientedTrace(Cons, Sig, Rel, T, O,
                              static_cast<WitnessMode>(I % 3));
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

TEST(TraceFuzzTest, SlinDataOrientedDifferential_ConsensusRelation) {
  // Walk traces re-targeted at the consensus relation (switch values
  // remapped into small proposals), as in SlinFuzz_ConsensusRelation:
  // mixed-verdict phase traces with aborts and recoveries, on/off
  // identical at every prefix under both readings.
  ConsensusAdt Cons;
  ConsensusInitRelation ConsRel;
  unsigned N = traceBudget(160);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed = hashCombine(hashCombine(baseSeed(), 0x72), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    PhaseId M = 1 + (I % 2);
    PhaseSignature Sig(M, M + 1);
    UniversalInitRelation WalkRel;
    Trace T = drawSlinWalk(Sig, WalkRel, R);
    for (Action &Act : T)
      if (isSwitch(Act))
        Act.Sv.Val = 1 + (Act.Sv.Val & 1);
    SlinCheckOptions O;
    O.AbortValidityAtEnd = I % 2 == 1;
    fuzzSlinDataOrientedTrace(Cons, Sig, ConsRel, T, O,
                              static_cast<WitnessMode>(I % 3));
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

TEST(TraceFuzzTest, SlinDataOrientedDifferential_SteadyStreams) {
  // Long abort-free switch-free consensus streams past the retirement
  // threshold: the singleton-interpretation steady state. The on/off
  // differential must hold through continuous retirement, and the SoA
  // session must serve witness-free steady verdicts from the fast path.
  ConsensusAdt Cons;
  PhaseSignature Sig(1, 2);
  ConsensusInitRelation Rel;
  unsigned N = std::max(2u, traceBudget(200) / 50);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed = hashCombine(hashCombine(baseSeed(), 0x73), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    std::unique_ptr<AdtState> S = Cons.makeState();
    Trace T;
    unsigned Ops = 70 + static_cast<unsigned>(R.next() % 30);
    for (unsigned K = 0; K != Ops; ++K) {
      Input In = cons::propose(1 + static_cast<std::int64_t>(R.next() % 3));
      Output Out = S->apply(In);
      ClientId C = K % 3;
      T.push_back(makeInvoke(C, 1, In));
      T.push_back(makeRespond(C, 1, In, Out));
    }
    SlinCheckOptions O;
    O.AbortValidityAtEnd = I % 2 == 1;
    WitnessMode Mode = I % 2 ? WitnessMode::Mixed : WitnessMode::Never;
    fuzzSlinDataOrientedTrace(Cons, Sig, Rel, T, O, Mode);
    if (::testing::Test::HasFatalFailure())
      return;
    // Re-stream through one SoA session to observe the fast-path counter
    // (the differential's sessions are scoped to the helper).
    IncrementalSlinSession Probe(Cons, Sig, Rel);
    SlinCheckOptions Free = O;
    Free.WantWitness = false;
    for (const Action &A : T) {
      Probe.append(A);
      Probe.verdict(Free);
    }
    EXPECT_GT(Probe.stats().FastPathVerdicts, 0u)
        << "witness-free abort-free slin stream never took the fast path";
    EXPECT_GT(Probe.retiredObligations(), 0u);
  }
}

TEST(TraceFuzzTest, SlinDataOrientedDifferential_InitFamilySteadyStreams) {
  // The multi-interpretation steady state: a non-first phase opened by an
  // init switch, so the consensus relation's family has three members
  // (canonical + two fresh-extended) and every fast-path verdict sweeps
  // three retained frontiers. On/off identical throughout; the fast path
  // must fire across the whole family.
  ConsensusAdt Cons;
  PhaseSignature Sig(2, 3);
  ConsensusInitRelation Rel;
  unsigned N = std::max(2u, traceBudget(200) / 50);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed = hashCombine(hashCombine(baseSeed(), 0x74), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    // One client takes over phase 2 with switch value v: its ghost history
    // starts with p(v), and every later proposal decides v.
    std::int64_t V = 1 + static_cast<std::int64_t>(R.next() % 2);
    std::unique_ptr<AdtState> S = Cons.makeState();
    (void)S->apply(cons::propose(V));
    Trace T;
    T.push_back(makeSwitch(0, 2, cons::propose(V), SwitchValue{V}));
    T.push_back(makeRespond(0, 2, cons::propose(V), S->apply(cons::propose(V))));
    unsigned Ops = 60 + static_cast<unsigned>(R.next() % 30);
    for (unsigned K = 0; K != Ops; ++K) {
      // Proposal values stay <= the switch value: a larger value would
      // raise the relation's fresh-value bound, recompute the family, and
      // re-key the retained frontiers — correct, but not the steady state
      // this family exists to pin.
      Input In = cons::propose(
          1 + static_cast<std::int64_t>(R.next() % static_cast<unsigned>(V)));
      Output Out = S->apply(In);
      T.push_back(makeInvoke(0, 2, In));
      T.push_back(makeRespond(0, 2, In, Out));
    }
    SlinCheckOptions O;
    O.AbortValidityAtEnd = I % 2 == 1;
    WitnessMode Mode = I % 2 ? WitnessMode::Mixed : WitnessMode::Never;
    fuzzSlinDataOrientedTrace(Cons, Sig, Rel, T, O, Mode);
    if (::testing::Test::HasFatalFailure())
      return;
    IncrementalSlinSession Probe(Cons, Sig, Rel);
    SlinCheckOptions Free = O;
    Free.WantWitness = false;
    for (const Action &A : T) {
      Probe.append(A);
      Probe.verdict(Free);
    }
    EXPECT_GT(Probe.stats().FastPathVerdicts, 0u)
        << "init-family slin stream never took the fast path";
    EXPECT_GT(Probe.retiredObligations(), 0u);
  }
}

//===----------------------------------------------------------------------===//
// Retained replay state: bit-equivalence with a fresh seed replay under
// arbitrary append / rewindToMark / reset interleavings.
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::int64_t> canonical(const AdtState &S) {
  std::vector<std::int64_t> Out;
  // Clone first: serialization must not depend on the live session state.
  S.clone()->serializeCanonical(Out);
  return Out;
}

/// Replays \p H into a fresh state of \p Type and serializes it.
std::vector<std::int64_t> replayCanonical(const Adt &Type, const History &H) {
  std::unique_ptr<AdtState> S = Type.makeState();
  for (const Input &In : H)
    S->apply(In);
  std::vector<std::int64_t> Out;
  S->serializeCanonical(Out);
  return Out;
}

void expectFrontierMatchesReplay(const Adt &Type,
                                 const IncrementalLinSession &Inc) {
  const FrontierState &F = Inc.frontierState();
  if (!F.Valid)
    return;
  History H = Inc.frontierHistory();
  ASSERT_EQ(F.Len, H.size())
      << "retained frontier length diverged from the retained master";
  ASSERT_NE(F.State, nullptr);
  ASSERT_EQ(canonical(*F.State), replayCanonical(Type, H))
      << "retained AdtState is not bit-equivalent to a fresh replay of the "
      << "retained master (" << H.size() << " inputs)";
}

} // namespace

TEST(TraceFuzzTest, RetainedReplayStateMatchesFreshReplay) {
  // Drive random interleavings of append / verdict / markPrefix /
  // rewindToMark / reset against every ADT; after every verdict the cached
  // frontier state (when present) must be bit-equivalent to a fresh seed
  // replay of the retained master.
  ConsensusAdt Cons;
  QueueAdt Q;
  RegisterAdt Reg;
  KvStoreAdt Kv;
  UniversalAdt Uni;
  const LinFixture Fixtures[] = {
      {Cons,
       {cons::propose(1), cons::propose(2), cons::propose(3)},
       {cons::decide(1), cons::decide(2), cons::decide(3)}},
      {Q,
       {queue::enq(1), queue::enq(2), queue::deq()},
       {Output{1}, Output{2}, Output{NoValue}}},
      {Reg,
       {reg::read(), reg::write(1), reg::write(2)},
       {Output{1}, Output{2}, Output{NoValue}}},
      {Kv,
       {kv::put(1, 10), kv::put(2, 20), kv::get(1), kv::del(2)},
       {Output{10}, Output{20}, Output{NoValue}}},
      {Uni,
       {Input{1, 0, 1, 0}, Input{2, 0, 2, 0}},
       {Output{0}, Output{1}}},
  };

  unsigned Rounds = traceBudget(60);
  for (const LinFixture &Fx : Fixtures) {
    for (unsigned I = 0; I != Rounds; ++I) {
      std::uint64_t TraceSeed =
          hashCombine(hashCombine(baseSeed(), 0x31),
                      hashCombine(hashValue(Fx.Alphabet.front()), I));
      SCOPED_TRACE(seedNote(TraceSeed, I));
      Rng R(TraceSeed);
      GenOptions G;
      G.NumClients = 3;
      G.NumOps = 10;
      G.PendingFraction = 0;
      G.Alphabet = Fx.Alphabet;
      G.Outputs = Fx.Outputs;
      Trace Feed = genLinearizableTrace(Fx.Type, G, R);

      IncrementalLinSession Inc(Fx.Type);
      std::size_t Next = 0;
      for (unsigned Step = 0; Step != 48; ++Step) {
        switch (R.next() % 8) {
        case 0:
        case 1:
        case 2:
        case 3: // Append the next event (refill from a fresh trace at end).
          if (Next == Feed.size()) {
            Feed = genLinearizableTrace(Fx.Type, G, R);
            Inc.reset();
            Next = 0;
          }
          Inc.append(Feed[Next++]);
          break;
        case 4:
        case 5: // Verdict; afterwards the frontier must match a replay.
          Inc.verdict();
          expectFrontierMatchesReplay(Fx.Type, Inc);
          break;
        case 6:
          if (Inc.hasMark() && R.next() % 2) {
            Inc.rewindToMark();
            // The view rewound with the frontier; keep feeding from the
            // mark's position in the trace.
            Next = Inc.size();
          } else {
            Inc.markPrefix();
          }
          expectFrontierMatchesReplay(Fx.Type, Inc);
          break;
        default:
          Inc.reset();
          Next = 0;
          Feed = genLinearizableTrace(Fx.Type, G, R);
          EXPECT_FALSE(Inc.frontierState().Valid)
              << "reset must invalidate the retained replay state";
          break;
        }
        if (::testing::Test::HasFatalFailure())
          return;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Relation monotonicity: TsoHb is a sub-relation of Strict (it drops
// cross-client order at unflushed responses and adds nothing), so every
// Strict witness is a TsoHb witness. Weakening the relation can only move
// verdicts toward Yes:
//
//   Yes under Strict  =>  Yes under TsoHb
//   No  under TsoHb   =>  No  under Strict
//
// The oracle runs the full seeded family — all five ADTs, linearizable /
// mutated / arbitrary / corrupted draws, random flushed-bit densities —
// per prefix, batch and incremental, lin and slin. It needs no ground
// truth: any inversion is a mask-derivation bug in one of the relations.
//===----------------------------------------------------------------------===//

namespace {

/// Scatters flushed bits over the responses: density rotates through
/// all-unflushed (maximal weakening), mixed, and all-flushed (where TsoHb
/// must coincide with Strict exactly).
void scatterFlushedBits(Trace &T, unsigned Index, Rng &R) {
  unsigned Density = Index % 3; // 0: none, 1: coin-flip, 2: all.
  for (Action &A : T)
    if (isRespond(A) && (Density == 2 || (Density == 1 && R.next() % 2)))
      A.Meta = ActionMetaFlushed;
}

/// The two-relation differential for one lin trace: batch monotonicity at
/// every prefix, each incremental session agreeing with the batch check
/// under its own relation, and exact verdict/node equality when every
/// response is flushed.
void fuzzLinMonotonicity(const LinFixture &Fx, const Trace &T,
                         bool AllFlushed) {
  LinCheckOptions StrictO;
  LinCheckOptions TsoO;
  TsoO.Order = OrderRelationKind::TsoHb;
  IncrementalOptions TsoInc;
  TsoInc.Order = OrderRelationKind::TsoHb;
  IncrementalLinSession StrictSession(Fx.Type);
  IncrementalLinSession TsoSession(Fx.Type, TsoInc);

  Trace Prefix;
  for (const Action &A : T) {
    StrictSession.append(A);
    TsoSession.append(A);
    Prefix.push_back(A);

    LinCheckResult S = checkLinearizable(Prefix, Fx.Type, StrictO);
    LinCheckResult W = checkLinearizable(Prefix, Fx.Type, TsoO);
    if (S.Outcome == Verdict::Yes)
      ASSERT_EQ(W.Outcome, Verdict::Yes)
          << Fx.Type.name() << ": weakening the order lost a Yes at prefix "
          << Prefix.size() << ":\n"
          << formatTrace(Prefix);
    if (W.Outcome == Verdict::No)
      ASSERT_EQ(S.Outcome, Verdict::No)
          << Fx.Type.name() << ": a TsoHb No must be a Strict No at prefix "
          << Prefix.size() << ":\n"
          << formatTrace(Prefix);
    if (AllFlushed) {
      // Every response flushed: the relations' masks coincide slot for
      // slot, so verdicts AND node counts must be identical.
      ASSERT_EQ(S.Outcome, W.Outcome) << formatTrace(Prefix);
      ASSERT_EQ(S.NodesExplored, W.NodesExplored) << formatTrace(Prefix);
    }

    ASSERT_EQ(StrictSession.verdict().Outcome, S.Outcome)
        << Fx.Type.name() << ": strict session diverged from strict batch "
        << "at prefix " << Prefix.size() << ":\n"
        << formatTrace(Prefix);
    ASSERT_EQ(TsoSession.verdict().Outcome, W.Outcome)
        << Fx.Type.name() << ": tso session diverged from tso batch at "
        << "prefix " << Prefix.size() << ":\n"
        << formatTrace(Prefix);
  }
}

void runLinMonotonicityFuzz(const LinFixture &Fx, std::uint64_t FamilyTag) {
  unsigned N = traceBudget(120);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed =
        hashCombine(hashCombine(baseSeed(), FamilyTag), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    Trace T = drawLinTrace(Fx, I, R);
    scatterFlushedBits(T, I, R);
    fuzzLinMonotonicity(Fx, T, /*AllFlushed=*/I % 3 == 2);
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

} // namespace

TEST(TraceFuzzTest, OrderMonotonicity_Consensus) {
  ConsensusAdt Cons;
  runLinMonotonicityFuzz({Cons,
                          {cons::propose(1), cons::propose(2),
                           cons::propose(3)},
                          {cons::decide(1), cons::decide(2),
                           cons::decide(3)}},
                         0x71);
}

TEST(TraceFuzzTest, OrderMonotonicity_Queue) {
  QueueAdt Q;
  runLinMonotonicityFuzz({Q,
                          {queue::enq(1), queue::enq(2), queue::deq()},
                          {Output{1}, Output{2}, Output{NoValue}}},
                         0x72);
}

TEST(TraceFuzzTest, OrderMonotonicity_Register) {
  RegisterAdt Reg;
  runLinMonotonicityFuzz({Reg,
                          {reg::read(), reg::write(1), reg::write(2)},
                          {Output{1}, Output{2}, Output{NoValue}}},
                         0x73);
}

TEST(TraceFuzzTest, OrderMonotonicity_KvStore) {
  KvStoreAdt Kv;
  runLinMonotonicityFuzz({Kv,
                          {kv::put(1, 10), kv::put(1, 20), kv::get(1),
                           kv::del(1)},
                          {Output{10}, Output{20}, Output{NoValue}}},
                         0x74);
}

TEST(TraceFuzzTest, OrderMonotonicity_Universal) {
  UniversalAdt Uni;
  runLinMonotonicityFuzz({Uni,
                          {Input{1, 0, 1, 0}, Input{2, 0, 2, 0},
                           Input{3, 0, 3, 0}},
                          {Output{0}, Output{1}}},
                         0x75);
}

TEST(TraceFuzzTest, OrderMonotonicity_Slin) {
  // The same oracle through the speculative checker: phase walks with
  // aborts and recoveries, flushed bits scattered over the responses,
  // batch (Search.Order) against the incremental sessions (Options.Order)
  // under both relations.
  ConsensusAdt Cons;
  unsigned N = traceBudget(100);
  for (unsigned I = 0; I != N; ++I) {
    std::uint64_t TraceSeed = hashCombine(hashCombine(baseSeed(), 0x76), I);
    SCOPED_TRACE(seedNote(TraceSeed, I));
    Rng R(TraceSeed);
    PhaseId M = 1 + (I % 2);
    PhaseSignature Sig(M, M + 1);
    UniversalInitRelation Rel;
    Trace T = drawSlinWalk(Sig, Rel, R);
    scatterFlushedBits(T, I, R);

    SlinCheckOptions StrictO;
    SlinCheckOptions TsoO;
    TsoO.Search.Order = OrderRelationKind::TsoHb;
    IncrementalOptions TsoIncO;
    TsoIncO.Order = OrderRelationKind::TsoHb;
    IncrementalSlinSession StrictSession(Cons, Sig, Rel);
    IncrementalSlinSession TsoSession(Cons, Sig, Rel, TsoIncO);

    Trace Prefix;
    for (const Action &A : T) {
      StrictSession.append(A);
      TsoSession.append(A);
      Prefix.push_back(A);

      SlinVerdict S = checkSlin(Prefix, Sig, Cons, Rel, StrictO);
      SlinVerdict W = checkSlin(Prefix, Sig, Cons, Rel, TsoO);
      if (S.Outcome == Verdict::Yes)
        ASSERT_EQ(W.Outcome, Verdict::Yes)
            << "slin: weakening the order lost a Yes at prefix "
            << Prefix.size() << ":\n"
            << formatTrace(Prefix);
      if (W.Outcome == Verdict::No)
        ASSERT_EQ(S.Outcome, Verdict::No)
            << "slin: a TsoHb No must be a Strict No at prefix "
            << Prefix.size() << ":\n"
            << formatTrace(Prefix);

      ASSERT_EQ(StrictSession.verdict(StrictO).Outcome, S.Outcome)
          << "slin strict session diverged from batch at prefix "
          << Prefix.size() << ":\n"
          << formatTrace(Prefix);
      ASSERT_EQ(TsoSession.verdict(TsoO).Outcome, W.Outcome)
          << "slin tso session diverged from batch at prefix "
          << Prefix.size() << ":\n"
          << formatTrace(Prefix);
    }
    if (::testing::Test::HasFatalFailure())
      return;
  }
}
