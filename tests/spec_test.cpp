//===- tests/spec_test.cpp - Section 6 spec automaton tests ---------------==//
//
// Part of the slin project.
//
//===----------------------------------------------------------------------===//

#include "adt/Consensus.h"
#include "spec/Refinement.h"
#include "spec/SpecAutomaton.h"
#include "trace/TraceIo.h"

#include <gtest/gtest.h>

using namespace slin;

namespace {

Input P(std::int64_t V) { return cons::propose(V); }

} // namespace

TEST(SpecAutomatonTest, FirstPhaseStartsInitialized) {
  SpecAutomaton A(PhaseSignature(1, 2), 2);
  SpecState S = A.initialState();
  EXPECT_TRUE(S.Initialized);
  EXPECT_EQ(S.Mode[0], ClientMode::Ready);
  EXPECT_TRUE(S.Hist.empty());
}

TEST(SpecAutomatonTest, LaterPhaseStartsAsleep) {
  SpecAutomaton A(PhaseSignature(2, 3), 2);
  SpecState S = A.initialState();
  EXPECT_FALSE(S.Initialized);
  EXPECT_EQ(S.Mode[0], ClientMode::Sleep);
}

TEST(SpecAutomatonTest, RespondAppendsPendingInput) {
  SpecAutomaton A(PhaseSignature(1, 2), 2);
  SpecState S = A.initialState();
  ASSERT_TRUE(SpecAutomaton::applyInvoke(S, 0, P(5)));
  History Responded;
  ASSERT_TRUE(SpecAutomaton::applyRespond(S, 0, &Responded));
  EXPECT_EQ(Responded, History{P(5)});
  EXPECT_EQ(S.Mode[0], ClientMode::Ready);
  // Respond again without a new invocation: disabled.
  EXPECT_FALSE(SpecAutomaton::applyRespond(S, 0, &Responded));
}

TEST(SpecAutomatonTest, InitTakesLcpOfInitHists) {
  SpecAutomaton A(PhaseSignature(2, 3), 2);
  SpecState S = A.initialState();
  ASSERT_TRUE(SpecAutomaton::applySwitchIn(S, 0, P(9), {P(5), P(7)}));
  ASSERT_TRUE(SpecAutomaton::applySwitchIn(S, 1, P(8), {P(5), P(6)}));
  ASSERT_TRUE(SpecAutomaton::applyInit(S));
  EXPECT_EQ(S.Hist, History{P(5)});
  EXPECT_FALSE(SpecAutomaton::applyInit(S)); // Fires once.
}

TEST(SpecAutomatonTest, AbortOutConstrainsValue) {
  SpecAutomaton A(PhaseSignature(1, 2), 2);
  SpecState S = A.initialState();
  ASSERT_TRUE(SpecAutomaton::applyInvoke(S, 0, P(5)));
  ASSERT_TRUE(SpecAutomaton::applyInvoke(S, 1, P(7)));
  SpecAutomaton::applyAbortFlag(S);
  // Value must extend hist (empty) by pending inputs only.
  SpecState Bad = S;
  EXPECT_FALSE(SpecAutomaton::applyAbortOut(Bad, 0, {P(9)}));
  SpecState Good = S;
  EXPECT_TRUE(SpecAutomaton::applyAbortOut(Good, 0, {P(5), P(7)}));
  EXPECT_EQ(Good.Mode[0], ClientMode::Aborted);
}

TEST(SpecAutomatonTest, AbortRequiresFlag) {
  SpecAutomaton A(PhaseSignature(1, 2), 2);
  SpecState S = A.initialState();
  ASSERT_TRUE(SpecAutomaton::applyInvoke(S, 0, P(5)));
  EXPECT_FALSE(SpecAutomaton::applyAbortOut(S, 0, {P(5)}));
}

TEST(SpecAutomatonTest, AcceptsOwnHandBuiltTrace) {
  SpecAutomaton A(PhaseSignature(1, 2), 2);
  UniversalInitRelation Rel;
  History H1 = {P(5)};
  History H12 = {P(5), P(7)};
  Trace T = {
      makeInvoke(0, 1, P(5)),
      makeRespond(0, 1, P(5), historyOutput(H1)),
      makeInvoke(1, 1, P(7)),
      makeSwitch(1, 2, P(7), Rel.encode(H12)),
  };
  EXPECT_TRUE(A.accepts(T, Rel).Ok) << A.accepts(T, Rel).Reason;
}

TEST(SpecAutomatonTest, RejectsWrongResponseFingerprint) {
  SpecAutomaton A(PhaseSignature(1, 2), 2);
  UniversalInitRelation Rel;
  Trace T = {
      makeInvoke(0, 1, P(5)),
      makeRespond(0, 1, P(5), historyOutput(History{P(7)})),
  };
  EXPECT_FALSE(A.accepts(T, Rel).Ok);
}

TEST(SpecAutomatonTest, RejectsAbortValueNotExtendingHist) {
  SpecAutomaton A(PhaseSignature(1, 2), 2);
  UniversalInitRelation Rel;
  History H1 = {P(5)};
  Trace T = {
      makeInvoke(0, 1, P(5)),
      makeRespond(0, 1, P(5), historyOutput(H1)),
      makeInvoke(1, 1, P(7)),
      // Abort value [p7] does not extend hist [p5].
      makeSwitch(1, 2, P(7), Rel.encode(History{P(7)})),
  };
  EXPECT_FALSE(A.accepts(T, Rel).Ok);
}

TEST(SpecAutomatonTest, SecondPhaseAcceptsLcpConsistentTrace) {
  SpecAutomaton A(PhaseSignature(2, 3), 2);
  UniversalInitRelation Rel;
  History Init = {P(5)};
  Trace T = {
      makeSwitch(0, 2, P(9), Rel.encode(Init)),
      makeRespond(0, 2, P(9), historyOutput(History{P(5), P(9)})),
      makeSwitch(1, 2, P(8), Rel.encode(Init)),
      makeRespond(1, 2, P(8), historyOutput(History{P(5), P(9), P(8)})),
  };
  EXPECT_TRUE(A.accepts(T, Rel).Ok) << A.accepts(T, Rel).Reason;
}

TEST(SpecAutomatonTest, SecondPhaseA1TimingExplored) {
  // The first client's response is consistent only if A1 fired after just
  // one switch-in (LCP [p5, p6]); the monitor must find that timing.
  SpecAutomaton A(PhaseSignature(2, 3), 2);
  UniversalInitRelation Rel;
  History Long = {P(5), P(6)};
  History Short = {P(5)};
  Trace T = {
      makeSwitch(0, 2, P(9), Rel.encode(Long)),
      makeSwitch(1, 2, P(8), Rel.encode(Short)),
      makeRespond(0, 2, P(9), historyOutput(History{P(5), P(6), P(9)})),
  };
  EXPECT_TRUE(A.accepts(T, Rel).Ok) << A.accepts(T, Rel).Reason;
  // Whereas a response consistent with the two-switch LCP also works...
  Trace T2 = {
      makeSwitch(0, 2, P(9), Rel.encode(Long)),
      makeSwitch(1, 2, P(8), Rel.encode(Short)),
      makeRespond(0, 2, P(9), historyOutput(History{P(5), P(9)})),
  };
  EXPECT_TRUE(A.accepts(T2, Rel).Ok) << A.accepts(T2, Rel).Reason;
  // ...but one consistent with neither does not.
  Trace T3 = {
      makeSwitch(0, 2, P(9), Rel.encode(Long)),
      makeSwitch(1, 2, P(8), Rel.encode(Short)),
      makeRespond(0, 2, P(9), historyOutput(History{P(6), P(9)})),
  };
  EXPECT_FALSE(A.accepts(T3, Rel).Ok);
}

TEST(SpecAutomatonTest, RandomWalksAreAccepted) {
  for (PhaseId M : {1u, 2u}) {
    SpecAutomaton A(PhaseSignature(M, M + 1), 3);
    UniversalInitRelation Rel;
    SpecAutomaton::WalkOptions Opts;
    Opts.Alphabet = {P(1), P(2), P(3)};
    Opts.InitChoices = {{P(1)}, {P(1), P(2)}, {P(2)}};
    Rng R(2024 + M);
    for (int I = 0; I < 100; ++I) {
      Trace T = A.randomWalk(Opts, R, Rel);
      WellFormedness Acc = A.accepts(T, Rel);
      ASSERT_TRUE(Acc.Ok) << Acc.Reason << "\n" << formatTrace(T);
    }
  }
}

TEST(SpecAutomatonTest, WalksAreWellFormedPhaseTraces) {
  SpecAutomaton A(PhaseSignature(2, 3), 3);
  UniversalInitRelation Rel;
  SpecAutomaton::WalkOptions Opts;
  Opts.Alphabet = {P(1), P(2)};
  Opts.InitChoices = {{P(1)}, {P(2)}};
  Rng R(99);
  for (int I = 0; I < 100; ++I) {
    Trace T = A.randomWalk(Opts, R, Rel);
    EXPECT_TRUE(checkWellFormedPhase(T, PhaseSignature(2, 3)).Ok)
        << formatTrace(T);
  }
}

//===----------------------------------------------------------------------===//
// Bounded refinement: the automaton form of Theorem 3.
//===----------------------------------------------------------------------===//

struct RefinementCase {
  const char *Name;
  unsigned Clients;
  unsigned Depth;
  unsigned Values;
};

class RefinementDepths : public ::testing::TestWithParam<RefinementCase> {};

TEST_P(RefinementDepths, CompositionRefinesSingle) {
  const RefinementCase &C = GetParam();
  RefinementOptions Opts;
  Opts.NumClients = C.Clients;
  Opts.MaxExternalActions = C.Depth;
  for (unsigned V = 1; V <= C.Values; ++V)
    Opts.Alphabet.push_back(P(V));
  RefinementResult R = checkCompositionRefinement(2, 3, Opts);
  EXPECT_TRUE(R.Holds) << R.Counterexample;
  EXPECT_FALSE(R.Exhausted) << "raise MaxNodes for this configuration";
  EXPECT_GT(R.NodesExplored, 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, RefinementDepths,
    ::testing::Values(RefinementCase{"c2_d5_v2", 2, 5, 2},
                      RefinementCase{"c2_d6_v2", 2, 6, 2},
                      RefinementCase{"c3_d4_v1", 3, 4, 1},
                      RefinementCase{"c2_d4_v3", 2, 4, 3}),
    [](const ::testing::TestParamInfo<RefinementCase> &Info) {
      return Info.param.Name;
    });
