//===- tests/engine_internals_test.cpp - Engine building blocks -----------==//
//
// Part of the slin project.
//
//===----------------------------------------------------------------------===//
//
// Direct unit tests for the engine's building blocks, which until now were
// covered only through whole-checker runs: the Arena's rewind/overflow
// block reuse (the guarantee that a corpus run performs a bounded number of
// real heap allocations) and the TranspositionTable's lazy growth and
// always-replace-at-capacity semantics (the guarantee that memo pressure
// costs re-exploration, never a wrong verdict), plus the CorpusDriver's
// scheduling-independent results.
//
//===----------------------------------------------------------------------===//

#include "adt/Consensus.h"
#include "adt/Queue.h"
#include "adt/Register.h"
#include "adt/Universal.h"
#include "engine/CorpusDriver.h"
#include "engine/Incremental.h"
#include "engine/Transposition.h"
#include "spec/SpecAutomaton.h"
#include "support/Arena.h"
#include "trace/Gen.h"
#include "trace/TraceIo.h"

#include <gtest/gtest.h>

using namespace slin;

//===----------------------------------------------------------------------===//
// Arena: bump allocation, rewind, and overflow-block reuse.
//===----------------------------------------------------------------------===//

TEST(ArenaTest, AllocationsAreDisjointAndAligned) {
  Arena A;
  std::int32_t *X = A.allocZeroed<std::int32_t>(10);
  std::int64_t *Y = A.allocArray<std::int64_t>(5);
  ASSERT_NE(X, nullptr);
  ASSERT_NE(Y, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(Y) % alignof(std::int64_t), 0u);
  // Writing one allocation must not disturb the other.
  for (int I = 0; I != 10; ++I)
    X[I] = I;
  for (int I = 0; I != 5; ++I)
    Y[I] = -1;
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(X[I], I);
  EXPECT_EQ(A.bytesAllocated(), 10 * sizeof(std::int32_t) +
                                    5 * sizeof(std::int64_t));
}

TEST(ArenaTest, ResetRewindsToTheSameStorage) {
  Arena A;
  void *First = A.allocate(128);
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  // After a rewind the first allocation reuses the first block's storage:
  // no new heap allocation, same address handed back.
  void *Again = A.allocate(128);
  EXPECT_EQ(First, Again);
}

TEST(ArenaTest, OverflowBlocksAreRetainedAndReused) {
  // A tiny block size forces overflow chaining immediately.
  Arena A(/*BlockBytes=*/64);
  void *Small = A.allocate(16);
  void *Big = A.allocate(1024); // Cannot fit a 64-byte block: dedicated block.
  ASSERT_NE(Small, nullptr);
  ASSERT_NE(Big, nullptr);
  A.reset();
  // The rewound arena must serve the same shapes from the retained blocks.
  void *Small2 = A.allocate(16);
  void *Big2 = A.allocate(1024);
  EXPECT_EQ(Small, Small2);
  EXPECT_EQ(Big, Big2);
}

TEST(ArenaTest, ZeroedArraysAreZeroAfterDirtyReuse) {
  Arena A(/*BlockBytes=*/64);
  std::int32_t *X = A.allocZeroed<std::int32_t>(8);
  for (int I = 0; I != 8; ++I)
    X[I] = 0x5A5A5A5A;
  A.reset();
  // allocZeroed must clear recycled (dirty) storage.
  std::int32_t *Y = A.allocZeroed<std::int32_t>(8);
  for (int I = 0; I != 8; ++I)
    EXPECT_EQ(Y[I], 0);
}

//===----------------------------------------------------------------------===//
// TranspositionTable: lazy growth and always-replace at capacity.
//===----------------------------------------------------------------------===//

TEST(TranspositionTest, InsertThenContains) {
  TranspositionTable T(1u << 12);
  EXPECT_FALSE(T.contains(42));
  T.insert(42);
  EXPECT_TRUE(T.contains(42));
  EXPECT_GE(T.stats().Inserts, 1u);
  EXPECT_GE(T.stats().Hits, 1u);
}

TEST(TranspositionTest, ZeroKeyIsStorable) {
  // 0 is the internal empty sentinel; the table must remap, not lose it.
  TranspositionTable T;
  EXPECT_FALSE(T.contains(0));
  T.insert(0);
  EXPECT_TRUE(T.contains(0));
}

TEST(TranspositionTest, GrowsUpToMaxCapacityUnderLoad) {
  TranspositionTable T(/*MaxCapacity=*/1u << 14);
  std::size_t Initial = T.capacity();
  Rng R(0x7AB1E);
  for (int I = 0; I != 1 << 13; ++I)
    T.insert(R.next());
  EXPECT_GT(T.capacity(), Initial);
  EXPECT_LE(T.capacity(), 1u << 14);
}

TEST(TranspositionTest, CapacityIsBoundedAndReplacementKeepsNewKeys) {
  // A deliberately tiny table: inserts far beyond capacity must neither
  // grow it past the bound nor ever fail to record the newest key.
  TranspositionTable T(/*MaxCapacity=*/64);
  Rng R(0xCAFE);
  std::uint64_t Last = 0;
  for (int I = 0; I != 4096; ++I) {
    Last = R.next();
    T.insert(Last);
    // Always-replace: the key just inserted is always findable, even when
    // its probe window was full and a victim was evicted.
    EXPECT_TRUE(T.contains(Last));
  }
  EXPECT_LE(T.capacity(), 64u);
  EXPECT_LE(T.liveKeys(), T.capacity());
  EXPECT_GT(T.stats().Evictions, 0u);
}

TEST(TranspositionTest, ClearForgetsEverything) {
  TranspositionTable T;
  for (std::uint64_t K = 1; K <= 100; ++K)
    T.insert(K);
  T.clear();
  EXPECT_EQ(T.liveKeys(), 0u);
  for (std::uint64_t K = 1; K <= 100; ++K)
    EXPECT_FALSE(T.contains(K));
}

//===----------------------------------------------------------------------===//
// CorpusDriver: results are positional and scheduling-independent.
//===----------------------------------------------------------------------===//

namespace {

std::vector<Trace> mixedConsensusCorpus(unsigned Count) {
  ConsensusAdt Cons;
  GenOptions G;
  G.NumClients = 4;
  G.NumOps = 8;
  G.Alphabet = {cons::propose(1), cons::propose(2), cons::propose(3)};
  G.Outputs = {cons::decide(1), cons::decide(2), cons::decide(3)};
  Rng R(0xD21E);
  std::vector<Trace> Corpus;
  for (unsigned I = 0; I != Count; ++I) {
    Corpus.push_back(genLinearizableTrace(Cons, G, R));
    Corpus.push_back(genArbitraryTrace(G, R));
  }
  return Corpus;
}

} // namespace

TEST(CorpusDriverTest, ThreadCountsAgreeTraceByTrace) {
  ConsensusAdt Cons;
  std::vector<Trace> Corpus = mixedConsensusCorpus(60);

  CorpusOptions Serial;
  Serial.Threads = 1;
  Serial.RetryBudgetLimitedFresh = true;
  CorpusReport Base = CorpusDriver(Cons, Serial).checkLin(Corpus);
  ASSERT_EQ(Base.Results.size(), Corpus.size());
  EXPECT_EQ(Base.ThreadsUsed, 1u);

  for (unsigned Threads : {2u, 4u}) {
    CorpusOptions Par = Serial;
    Par.Threads = Threads;
    Par.ChunkSize = 3; // Exercise many steals.
    CorpusReport R = CorpusDriver(Cons, Par).checkLin(Corpus);
    ASSERT_EQ(R.Results.size(), Corpus.size());
    EXPECT_EQ(R.Yes, Base.Yes);
    EXPECT_EQ(R.No, Base.No);
    EXPECT_EQ(R.Unknown, Base.Unknown);
    for (std::size_t I = 0; I != Corpus.size(); ++I)
      EXPECT_EQ(R.Results[I].Outcome, Base.Results[I].Outcome)
          << "trace " << I << " changed verdict at " << Threads
          << " threads";
  }
}

TEST(CorpusDriverTest, AggregateCountsEveryCheck) {
  ConsensusAdt Cons;
  std::vector<Trace> Corpus = mixedConsensusCorpus(20);
  CorpusOptions O;
  O.Threads = 2;
  CorpusReport R = CorpusDriver(Cons, O).checkLin(Corpus);
  EXPECT_EQ(R.Aggregate.Checks, Corpus.size());
  EXPECT_EQ(R.Yes + R.No + R.Unknown, Corpus.size());
  EXPECT_GT(R.Aggregate.Search.Nodes, 0u);
}

TEST(CorpusDriverTest, BudgetLimitedIsReportedAndRetryRunsOneShot) {
  ConsensusAdt Cons;
  std::vector<Trace> Corpus = mixedConsensusCorpus(10);

  LinCheckOptions Tight;
  Tight.NodeBudget = 1; // Everything non-trivial exhausts instantly.
  CorpusOptions NoRetry;
  NoRetry.Threads = 1; // Deterministic trace->session assignment.
  CorpusReport Starved = CorpusDriver(Cons, NoRetry).checkLin(Corpus, Tight);
  EXPECT_GT(Starved.Unknown, 0u);
  EXPECT_EQ(Starved.BudgetLimited, Starved.Unknown);
  for (const CorpusTraceResult &R : Starved.Results)
    if (R.Outcome == Verdict::Unknown)
      EXPECT_TRUE(R.BudgetLimited);

  // With retry enabled under the same tight budget, the repair pass must
  // actually run — once per budget-limited trace — and every result must
  // land on its one-shot verdict (fresh-session semantics) at the right
  // corpus position.
  CorpusOptions Retry = NoRetry;
  Retry.RetryBudgetLimitedFresh = true;
  CorpusReport Repaired = CorpusDriver(Cons, Retry).checkLin(Corpus, Tight);
  EXPECT_EQ(Repaired.Retried, Starved.BudgetLimited);
  EXPECT_GT(Repaired.Retried, 0u);
  ASSERT_EQ(Repaired.Results.size(), Corpus.size());
  for (std::size_t I = 0; I != Corpus.size(); ++I) {
    if (Starved.Results[I].Outcome != Verdict::Unknown)
      continue;
    LinCheckResult OneShot = checkLinearizable(Corpus[I], Cons, Tight);
    EXPECT_EQ(Repaired.Results[I].Outcome, OneShot.Outcome) << "trace " << I;
    EXPECT_EQ(Repaired.Results[I].BudgetLimited, OneShot.BudgetLimited);
  }

  // And with the default budget nothing is budget-limited, so the retry
  // pass has nothing to do.
  CorpusReport Roomy = CorpusDriver(Cons, Retry).checkLin(Corpus);
  EXPECT_EQ(Roomy.Unknown, 0u);
  EXPECT_EQ(Roomy.BudgetLimited, 0u);
  EXPECT_EQ(Roomy.Retried, 0u);
}

//===----------------------------------------------------------------------===//
// Resumable sessions: append-order invariance, frontier reuse, absorption,
// mark/rewind, and pollution recovery.
//===----------------------------------------------------------------------===//

TEST(IncrementalSessionTest, CheckingScheduleDoesNotPerturbTheSearch) {
  // Randomized append-order invariance: with resumption off (a freshly
  // salted full search per verdict), checking after every event and
  // checking once at the end must produce identical verdicts AND node
  // counts for the final trace — intermediate checks must not perturb the
  // incrementally built problem.
  ConsensusAdt Cons;
  GenOptions G;
  G.NumClients = 4;
  G.NumOps = 8;
  G.Alphabet = {cons::propose(1), cons::propose(2), cons::propose(3)};
  G.Outputs = {cons::decide(1), cons::decide(2), cons::decide(3)};
  Rng R(0xA11F);
  IncrementalOptions NoResume;
  NoResume.Resume = false;
  for (int I = 0; I != 40; ++I) {
    Trace T = I % 2 ? genArbitraryTrace(G, R) : genLinearizableTrace(Cons, G, R);

    IncrementalLinSession Every(Cons, NoResume);
    LinCheckResult Last;
    for (const Action &A : T) {
      Every.append(A);
      Last = Every.verdict();
    }

    IncrementalLinSession Once(Cons, NoResume);
    for (const Action &A : T)
      Once.append(A);
    LinCheckResult End = Once.verdict();

    ASSERT_EQ(Last.Outcome, End.Outcome) << "trace " << I;
    ASSERT_EQ(Last.NodesExplored, End.NodesExplored)
        << "intermediate checks perturbed the final search on trace " << I;
  }
}

TEST(IncrementalSessionTest, ResumptionPaysOnlyForTheSuffix) {
  // On linearizable-by-construction growing histories the resumable path
  // must (a) agree with the resumption-free path at every prefix and
  // (b) spend strictly fewer total nodes: each verdict resumes from the
  // retained frontier instead of re-deriving the witness.
  ConsensusAdt Cons;
  GenOptions G;
  G.NumClients = 4;
  G.NumOps = 12;
  G.PendingFraction = 0;
  G.Alphabet = {cons::propose(1), cons::propose(2), cons::propose(3)};
  G.Outputs = {cons::decide(1), cons::decide(2), cons::decide(3)};
  Rng R(0xA120);
  IncrementalOptions NoResume;
  NoResume.Resume = false;
  std::uint64_t ResumeNodes = 0, FullNodes = 0;
  for (int I = 0; I != 10; ++I) {
    Trace T = genLinearizableTrace(Cons, G, R);
    IncrementalLinSession Fast(Cons);
    IncrementalLinSession Slow(Cons, NoResume);
    for (const Action &A : T) {
      Fast.append(A);
      Slow.append(A);
      LinCheckResult RF = Fast.verdict();
      LinCheckResult RS = Slow.verdict();
      ASSERT_EQ(RF.Outcome, RS.Outcome);
      ResumeNodes += RF.NodesExplored;
      FullNodes += RS.NodesExplored;
    }
  }
  EXPECT_LT(ResumeNodes, FullNodes)
      << "frontier resumption did not reduce search work";
}

TEST(IncrementalSessionTest, InvokeAppendsAndNoAreAbsorbed) {
  QueueAdt Q;
  IncrementalLinSession Inc(Q);
  Inc.append(makeInvoke(0, 1, queue::enq(1)));
  Inc.append(makeRespond(0, 1, queue::enq(1), Output{1}));
  ASSERT_EQ(Inc.verdict().Outcome, Verdict::Yes);
  // An appended invocation changes no obligation: O(1), zero nodes.
  Inc.append(makeInvoke(1, 1, queue::enq(2)));
  LinCheckResult R = Inc.verdict();
  EXPECT_EQ(R.Outcome, Verdict::Yes);
  EXPECT_EQ(R.NodesExplored, 0u);
  // A dequeue that returns a value never enqueued: conclusive No...
  Inc.append(makeInvoke(2, 1, queue::deq()));
  Inc.append(makeRespond(2, 1, queue::deq(), Output{77}));
  ASSERT_EQ(Inc.verdict().Outcome, Verdict::No);
  // ...which is final under extension, at zero additional nodes.
  Inc.append(makeInvoke(0, 1, queue::enq(3)));
  Inc.append(makeRespond(0, 1, queue::enq(3), Output{3}));
  R = Inc.verdict();
  EXPECT_EQ(R.Outcome, Verdict::No);
  EXPECT_EQ(R.NodesExplored, 0u);
}

TEST(IncrementalSessionTest, MarkRewindMembersMatchOneShot) {
  // A sealed shared prefix: members of the group (prefix + divergent
  // suffixes) are checked by rewinding and appending; their verdicts must
  // match one-shot checks of the full member traces.
  ConsensusAdt Cons;
  Trace Prefix;
  Prefix.push_back(makeInvoke(0, 1, cons::propose(1)));
  Prefix.push_back(makeInvoke(1, 1, cons::propose(2)));
  Prefix.push_back(makeRespond(0, 1, cons::propose(1), cons::decide(1)));

  // Suffix A: consistent second decision (linearizable).
  Trace SufYes;
  SufYes.push_back(makeRespond(1, 1, cons::propose(2), cons::decide(1)));
  // Suffix B: split decision (not linearizable).
  Trace SufNo;
  SufNo.push_back(makeRespond(1, 1, cons::propose(2), cons::decide(2)));
  // Suffix C: more work on top of A.
  Trace SufLong = SufYes;
  SufLong.push_back(makeInvoke(2, 1, cons::propose(3)));
  SufLong.push_back(makeRespond(2, 1, cons::propose(3), cons::decide(1)));

  IncrementalLinSession Inc(Cons);
  for (const Action &A : Prefix)
    ASSERT_TRUE(Inc.append(A));
  ASSERT_EQ(Inc.verdict().Outcome, Verdict::Yes); // Prime the seal.
  Inc.markPrefix();
  ASSERT_TRUE(Inc.hasMark());
  EXPECT_EQ(Inc.markLength(), Prefix.size());

  for (const Trace *Suffix : {&SufYes, &SufNo, &SufLong, &SufYes}) {
    Inc.rewindToMark();
    ASSERT_EQ(Inc.size(), Prefix.size());
    Trace Member = Prefix;
    for (const Action &A : *Suffix) {
      Inc.append(A);
      Member.push_back(A);
    }
    LinCheckResult Streamed = Inc.verdict();
    LinCheckResult OneShot = checkLinearizable(Member, Cons);
    ASSERT_EQ(Streamed.Outcome, OneShot.Outcome)
        << "member with suffix of " << Suffix->size() << " events";
  }
}

TEST(IncrementalSessionTest, BudgetExhaustionRecoversCleanly) {
  // A budget-limited verdict pollutes the lineage (ancestors of
  // unexplored subtrees were recorded as failed); the next verdict must
  // re-salt and still reach the batch checker's conclusive answer.
  ConsensusAdt Cons;
  GenOptions G;
  G.NumClients = 4;
  G.NumOps = 8;
  G.Alphabet = {cons::propose(1), cons::propose(2), cons::propose(3)};
  G.Outputs = {cons::decide(1), cons::decide(2), cons::decide(3)};
  Rng R(0xA121);
  for (int I = 0; I != 20; ++I) {
    Trace T = I % 2 ? genArbitraryTrace(G, R) : genLinearizableTrace(Cons, G, R);
    IncrementalLinSession Inc(Cons);
    for (const Action &A : T)
      Inc.append(A);
    LinCheckOptions Tight;
    Tight.NodeBudget = 1;
    LinCheckResult Starved = Inc.verdict(Tight);
    if (Starved.Outcome == Verdict::Unknown)
      EXPECT_TRUE(Starved.BudgetLimited);
    LinCheckResult Recovered = Inc.verdict();
    LinCheckResult Batch = checkLinearizable(T, Cons);
    ASSERT_EQ(Recovered.Outcome, Batch.Outcome) << "trace " << I;
  }
}

TEST(IncrementalSessionTest, BudgetLadderOnResumedSessionsStaysSound) {
  // The frontier resume and the completeness fallback share ONE budget
  // (the fallback runs on what the resumed subtree left, never on a fresh
  // full budget — see IncrementalLinSession::verdict). Walking a budget
  // ladder over a resumed session must stay sound at every rung: an
  // exhausted verdict is Unknown+BudgetLimited, a conclusive one matches
  // the batch checker. The engine's own unwinding can overshoot any
  // budget by the abandoned siblings on the stack (batch behaves the
  // same), so node counts are sanity-bounded, not pinned.
  ConsensusAdt Cons;
  GenOptions G;
  G.NumClients = 4;
  G.NumOps = 10;
  G.PendingFraction = 0;
  G.Alphabet = {cons::propose(1), cons::propose(2), cons::propose(3)};
  G.Outputs = {cons::decide(1), cons::decide(2), cons::decide(3)};
  Rng R(0xA122);
  for (int I = 0; I != 10; ++I) {
    Trace T = genLinearizableTrace(Cons, G, R);
    // A split decision: decide a value different from the history's (the
    // resumed subtree must fail and fall back).
    std::int64_t Decided = 1;
    for (const Action &A : T)
      if (isRespond(A)) {
        Decided = A.Out.Val;
        break;
      }
    std::int64_t Other = Decided == 1 ? 2 : 1;
    Trace Extended = T;
    Extended.push_back(makeInvoke(60, 1, cons::propose(Other)));
    Extended.push_back(
        makeRespond(60, 1, cons::propose(Other), cons::decide(Other)));
    for (std::uint64_t Budget : {1ull, 4ull, 64ull, 1ull << 20}) {
      // Fresh session per rung so the frontier path runs at every budget.
      IncrementalLinSession Inc(Cons);
      for (const Action &A : T)
        Inc.append(A);
      ASSERT_EQ(Inc.verdict().Outcome, Verdict::Yes); // Prime the frontier.
      Inc.append(Extended[T.size()]);
      Inc.append(Extended[T.size() + 1]);
      LinCheckOptions Opts;
      Opts.NodeBudget = Budget;
      LinCheckResult V = Inc.verdict(Opts);
      LinCheckResult Batch = checkLinearizable(Extended, Cons, Opts);
      if (V.Outcome == Verdict::Unknown) {
        EXPECT_TRUE(V.BudgetLimited);
      } else {
        EXPECT_EQ(V.Outcome, Verdict::No);
      }
      if (Batch.Outcome != Verdict::Unknown && V.Outcome != Verdict::Unknown)
        EXPECT_EQ(V.Outcome, Batch.Outcome);
      // Shared-budget sanity: nowhere near two fresh budgets of real work
      // at the big rung (the old bug), and bounded unwinding at small ones.
      EXPECT_LE(V.NodesExplored,
                2 * Budget + 8 * Extended.size())
          << "trace " << I << " budget " << Budget;
    }
  }
}

TEST(CheckSessionTest, ResetRestoresFreshSessionSemantics) {
  // After warming a session on one corpus, reset() must make subsequent
  // checks bit-identical (verdict AND node count) to a new session's.
  ConsensusAdt Cons;
  std::vector<Trace> Corpus = mixedConsensusCorpus(20);
  CheckSession Warm(Cons);
  for (const Trace &T : Corpus)
    Warm.checkLin(T);
  Warm.reset();
  for (const Trace &T : Corpus) {
    CheckSession Fresh(Cons);
    LinCheckResult A = Warm.checkLin(T);
    LinCheckResult B = Fresh.checkLin(T);
    ASSERT_EQ(A.Outcome, B.Outcome);
    ASSERT_EQ(A.NodesExplored, B.NodesExplored);
    Warm.reset();
  }
}

TEST(CorpusDriverTest, SharePrefixesPreservesVerdicts) {
  // Prefix sharing changes scheduling and warmth, never conclusive
  // verdicts: a prefix-closed corpus (every even prefix of growing
  // histories — the shape an online monitor's log re-check produces) and
  // a mixed corpus must agree row by row with the unshared baseline, at
  // every thread count.
  ConsensusAdt Cons;
  GenOptions G;
  G.NumClients = 4;
  G.NumOps = 10;
  G.PendingFraction = 0;
  G.Alphabet = {cons::propose(1), cons::propose(2), cons::propose(3)};
  G.Outputs = {cons::decide(1), cons::decide(2), cons::decide(3)};
  Rng R(0xD22E);
  std::vector<Trace> Corpus;
  for (int I = 0; I != 8; ++I) {
    Trace T = genLinearizableTrace(Cons, G, R);
    for (std::size_t Len = 2; Len <= T.size(); Len += 2)
      Corpus.emplace_back(T.begin(), T.begin() + Len);
    Corpus.push_back(genArbitraryTrace(G, R));
  }

  CorpusOptions Plain;
  Plain.Threads = 1;
  Plain.RetryBudgetLimitedFresh = true;
  CorpusReport Base = CorpusDriver(Cons, Plain).checkLin(Corpus);

  for (unsigned Threads : {1u, 3u}) {
    CorpusOptions Shared = Plain;
    Shared.Threads = Threads;
    Shared.SharePrefixes = true;
    Shared.ChunkSize = 5; // Force groups to straddle chunk boundaries.
    CorpusReport Rep = CorpusDriver(Cons, Shared).checkLin(Corpus);
    ASSERT_EQ(Rep.Results.size(), Corpus.size());
    for (std::size_t I = 0; I != Corpus.size(); ++I)
      ASSERT_EQ(Rep.Results[I].Outcome, Base.Results[I].Outcome)
          << "trace " << I << " at " << Threads << " threads";
    EXPECT_EQ(Rep.Yes, Base.Yes);
    EXPECT_EQ(Rep.No, Base.No);
    EXPECT_EQ(Rep.Unknown, Base.Unknown);
  }
}

TEST(CorpusDriverTest, SharePrefixesDoomedPrefixDoesNotPoisonSiblings) {
  // Regression: an ill-formed event rejected while streaming a group's
  // shared prefix must not be sealed into the mark — a sibling trace that
  // shares only the *accepted* events would rewind into the doomed state
  // and wrongly report No. Corpus: X and Y share an ill-formed event at
  // index 4 (both genuinely No); W shares only the 4 valid events and is
  // linearizable.
  ConsensusAdt Cons;
  Trace P4;
  P4.push_back(makeInvoke(0, 1, cons::propose(1)));
  P4.push_back(makeRespond(0, 1, cons::propose(1), cons::decide(1)));
  P4.push_back(makeInvoke(1, 1, cons::propose(2)));
  P4.push_back(makeInvoke(2, 1, cons::propose(3)));
  Action Doomer = makeInvoke(1, 1, cons::propose(2)); // Client 1 pending.

  Trace X = P4;
  X.push_back(Doomer);
  X.push_back(makeInvoke(3, 1, cons::propose(1)));
  Trace Y = P4;
  Y.push_back(Doomer);
  Y.push_back(makeInvoke(3, 1, cons::propose(2)));
  Trace W = P4;
  W.push_back(makeRespond(1, 1, cons::propose(2), cons::decide(1)));

  std::vector<Trace> Corpus = {W, X, Y};
  CorpusOptions Plain;
  Plain.Threads = 1;
  CorpusReport Base = CorpusDriver(Cons, Plain).checkLin(Corpus);
  CorpusOptions Shared = Plain;
  Shared.SharePrefixes = true;
  CorpusReport Rep = CorpusDriver(Cons, Shared).checkLin(Corpus);
  for (std::size_t I = 0; I != Corpus.size(); ++I)
    EXPECT_EQ(Rep.Results[I].Outcome, Base.Results[I].Outcome)
        << "trace " << I;
  EXPECT_EQ(Base.Results[0].Outcome, Verdict::Yes);
  EXPECT_EQ(Base.Results[1].Outcome, Verdict::No);
  EXPECT_EQ(Base.Results[2].Outcome, Verdict::No);
}

TEST(CorpusDriverTest, SlinCorpusRunsThroughTheDriver) {
  ConsensusAdt Cons;
  UniversalInitRelation Rel;
  PhaseSignature Sig(1, 2);
  SpecAutomaton A(Sig, 3);
  SpecAutomaton::WalkOptions W;
  W.Steps = 8;
  W.Alphabet = {cons::propose(1), cons::propose(2)};
  W.InitChoices = {{cons::ghostPropose(1)},
                   {cons::ghostPropose(1), cons::ghostPropose(2)}};
  Rng R(0xD21F);
  std::vector<Trace> Corpus;
  for (int I = 0; I != 30; ++I)
    Corpus.push_back(A.randomWalk(W, R, Rel));

  CorpusOptions Serial;
  Serial.Threads = 1;
  CorpusReport Base = CorpusDriver(Cons, Serial).checkSlin(Corpus, Sig, Rel);
  CorpusOptions Par = Serial;
  Par.Threads = 3;
  Par.ChunkSize = 2;
  CorpusReport R2 = CorpusDriver(Cons, Par).checkSlin(Corpus, Sig, Rel);
  ASSERT_EQ(Base.Results.size(), R2.Results.size());
  for (std::size_t I = 0; I != Base.Results.size(); ++I)
    EXPECT_EQ(Base.Results[I].Outcome, R2.Results[I].Outcome);
  EXPECT_GT(Base.Yes + Base.No, 0u);
}

//===----------------------------------------------------------------------===//
// Retained replay state and slin frontier resumption (O(1) steady state).
//===----------------------------------------------------------------------===//

TEST(IncrementalSessionTest, SteadyStateDoesZeroSeedReplay) {
  // The monitor's inner loop: once a Yes is cached, every later verdict
  // must adopt the retained AdtState instead of replaying the seed prefix
  // — SeedStepsReplayed must not grow, event after event, regardless of
  // history length.
  RegisterAdt Reg;
  GenOptions G;
  G.NumClients = 4;
  G.NumOps = 24;
  G.PendingFraction = 0;
  G.Alphabet = {reg::read(), reg::write(1), reg::write(2), reg::write(3)};
  G.Outputs = {Output{1}, Output{2}, Output{NoValue}};
  Rng R(0xA123);
  Trace T = genLinearizableTrace(Reg, G, R);
  IncrementalLinSession Inc(Reg);
  // Prime on the first quarter.
  std::size_t Primed = T.size() / 4;
  for (std::size_t I = 0; I != Primed; ++I)
    Inc.append(T[I]);
  ASSERT_EQ(Inc.verdict().Outcome, Verdict::Yes);
  std::uint64_t ReplayedAfterPriming = Inc.stats().Search.SeedStepsReplayed;
  for (std::size_t I = Primed; I != T.size(); ++I) {
    Inc.append(T[I]);
    LinCheckOptions O;
    O.WantWitness = false; // The O(1) monitor path.
    LinCheckResult V = Inc.verdict(O);
    ASSERT_EQ(V.Outcome, Verdict::Yes);
    EXPECT_EQ(Inc.stats().Search.SeedStepsReplayed, ReplayedAfterPriming)
        << "verdict after event " << I << " replayed the seed prefix";
  }
  // The retained state did absorb the seeds the replays used to pay for.
  EXPECT_GT(Inc.stats().Search.SeedStepsSkipped, 0u);
  EXPECT_GT(Inc.stats().FrontierResumes, 0u);
}

TEST(IncrementalSessionTest, SlinResumptionPaysOnlyForTheSuffix) {
  // The slin analogue of ResumptionPaysOnlyForTheSuffix: on speculatively
  // linearizable growing phase traces (spec-automaton walks checked in the
  // Section 6 universal instantiation — every prefix is Yes) the
  // per-interpretation frontier must (a) agree with the resumption-free
  // reference at every prefix and (b) spend strictly fewer total nodes.
  UniversalAdt Uni;
  UniversalInitRelation Rel;
  Rng R(0xA124);
  IncrementalOptions NoResume;
  NoResume.Resume = false;
  std::uint64_t ResumeNodes = 0, FullNodes = 0;
  for (int I = 0; I != 10; ++I) {
    PhaseId M = 1 + (I % 2); // M=2 walks include init actions (recoveries).
    PhaseSignature Sig(M, M + 1);
    SpecAutomaton A(Sig, 3);
    SpecAutomaton::WalkOptions W;
    W.Steps = 12;
    W.Alphabet = {cons::propose(1), cons::propose(2)};
    W.InitChoices = {{cons::ghostPropose(1)}};
    W.AbortProbability = 0; // Positive family: every prefix stays Yes.
    Trace T = A.randomWalk(W, R, Rel);
    IncrementalSlinSession Fast(Uni, Sig, Rel);
    IncrementalSlinSession Slow(Uni, Sig, Rel, NoResume);
    bool SawYes = false;
    for (const Action &Act : T) {
      Fast.append(Act);
      Slow.append(Act);
      SlinVerdict VF = Fast.verdict();
      SlinVerdict VS = Slow.verdict();
      ASSERT_EQ(VF.Outcome, VS.Outcome) << "walk " << I;
      SawYes |= VF.Outcome == Verdict::Yes;
      ResumeNodes += VF.NodesExplored;
      FullNodes += VS.NodesExplored;
    }
    EXPECT_TRUE(SawYes) << "walk " << I;
    EXPECT_GT(Fast.stats().FrontierResumes, 0u) << "walk " << I;
  }
  EXPECT_LT(ResumeNodes, FullNodes)
      << "slin frontier resumption did not reduce search work";
}

TEST(IncrementalSessionTest, SlinBudgetPollutionSaltsOutRetainedFrontiers) {
  // Regression: a budget-limited slin verdict records memo entries for
  // subtrees it never finished exploring, under the same salts the
  // retained frontier's next resumption would probe. The epoch must move
  // (salting the polluted era out) while the frontier itself survives —
  // the recovery verdict must match the batch checker, and still resume.
  UniversalAdt Uni;
  PhaseSignature Sig(1, 2);
  UniversalInitRelation Rel;
  SpecAutomaton A(Sig, 3);
  SpecAutomaton::WalkOptions W;
  W.Steps = 10;
  W.Alphabet = {cons::propose(1), cons::propose(2)};
  W.InitChoices = {{cons::ghostPropose(1)},
                   {cons::ghostPropose(1), cons::ghostPropose(2)}};
  W.AbortProbability = 0.3; // Injected aborts exercise the budget caps.
  Rng R(0xA125);
  for (int I = 0; I != 12; ++I) {
    Trace T = A.randomWalk(W, R, Rel);
    IncrementalSlinSession Inc(Uni, Sig, Rel);
    std::size_t Fed = 0;
    // Prime a frontier on the first half (walks are Yes by construction).
    for (; Fed != T.size() / 2; ++Fed)
      Inc.append(T[Fed]);
    SlinCheckOptions Full;
    ASSERT_EQ(Inc.verdict(Full).Outcome, Verdict::Yes);
    // Stream the rest, starving every other verdict.
    for (; Fed != T.size(); ++Fed) {
      Inc.append(T[Fed]);
      SlinCheckOptions Tight;
      Tight.Search.NodeBudget = 1;
      SlinVerdict Starved = Inc.verdict(Tight);
      if (Starved.Outcome == Verdict::Unknown)
        EXPECT_TRUE(Starved.BudgetLimited);
      SlinVerdict Recovered = Inc.verdict(Full);
      Trace Prefix(T.begin(), T.begin() + static_cast<std::ptrdiff_t>(Fed) + 1);
      SlinVerdict Batch = checkSlin(Prefix, Sig, Uni, Rel, Full);
      ASSERT_EQ(Recovered.Outcome, Batch.Outcome)
          << "walk " << I << " at prefix " << Prefix.size() << ":\n"
          << formatTrace(Prefix);
    }
  }
}

TEST(IncrementalSessionTest, MarkRewindRestoresRetainedReplayState) {
  // The retained-state lifecycle across mark/rewind: members advance the
  // frontier past the mark; each rewind must restore the mark-time replay
  // state so member verdicts keep matching one-shot checks AND keep doing
  // zero seed replay once resumed.
  ConsensusAdt Cons;
  Trace Prefix;
  Prefix.push_back(makeInvoke(0, 1, cons::propose(1)));
  Prefix.push_back(makeRespond(0, 1, cons::propose(1), cons::decide(1)));
  Prefix.push_back(makeInvoke(1, 1, cons::propose(2)));

  IncrementalLinSession Inc(Cons);
  for (const Action &A : Prefix)
    ASSERT_TRUE(Inc.append(A));
  ASSERT_EQ(Inc.verdict().Outcome, Verdict::Yes);
  ASSERT_TRUE(Inc.frontierState().Valid);
  Inc.markPrefix();

  for (int Member = 0; Member != 3; ++Member) {
    Inc.rewindToMark();
    ASSERT_TRUE(Inc.frontierState().Valid)
        << "rewind dropped the retained replay state";
    ASSERT_EQ(Inc.frontierState().Len, Inc.frontierHistory().size());
    Trace MemberTrace = Prefix;
    Action R1 = makeRespond(1, 1, cons::propose(2), cons::decide(1));
    Action I2 = makeInvoke(2, 1, cons::propose(3));
    Action R2 = makeRespond(2, 1, cons::propose(3),
                            cons::decide(Member == 1 ? 3 : 1));
    for (const Action &A : {R1, I2, R2}) {
      Inc.append(A);
      MemberTrace.push_back(A);
    }
    std::uint64_t ReplayedBefore = Inc.stats().Search.SeedStepsReplayed;
    LinCheckResult Streamed = Inc.verdict();
    LinCheckResult OneShot = checkLinearizable(MemberTrace, Cons);
    ASSERT_EQ(Streamed.Outcome, OneShot.Outcome) << "member " << Member;
    EXPECT_EQ(Inc.stats().Search.SeedStepsReplayed, ReplayedBefore)
        << "member " << Member << " replayed the marked prefix";
  }
}

//===----------------------------------------------------------------------===//
// Obligation retirement: the live window, the quiescent-cut fold, the
// structural overflow, and the WindowRetired soundness contract.
//===----------------------------------------------------------------------===//

namespace {

/// A linearizable register stream of \p Ops sequential operations (each op
/// completes before the next is invoked, so every position is a quiescence
/// cut) with a verdict after every event. \p Model carries the
/// linearization order across calls on one session (null: fresh stream).
void streamSequentialRegisterOps(IncrementalLinSession &Inc, unsigned Ops,
                                 const LinCheckOptions &Opts,
                                 bool VerdictPerEvent,
                                 AdtState *Model = nullptr) {
  RegisterAdt Reg;
  std::unique_ptr<AdtState> Fresh;
  if (!Model) {
    Fresh = Reg.makeState();
    Model = Fresh.get();
  }
  AdtState *S = Model;
  for (unsigned K = 0; K != Ops; ++K) {
    Input In = K % 3 ? reg::write(static_cast<std::int64_t>(1 + K % 3))
                     : reg::read();
    Output Out = S->apply(In);
    ASSERT_TRUE(Inc.append(makeInvoke(K % 4, 1, In)));
    if (VerdictPerEvent)
      Inc.verdict(Opts);
    ASSERT_TRUE(Inc.append(makeRespond(K % 4, 1, In, Out)));
    if (VerdictPerEvent) {
      LinCheckResult R = Inc.verdict(Opts);
      if (!Inc.overflowed()) // Excursions (pinned cuts) answer Unknown.
        ASSERT_EQ(R.Outcome, Verdict::Yes) << "op " << K;
    }
  }
}

} // namespace

TEST(IncrementalSessionTest, RetirementLiftsTheObligationCeiling) {
  // 200 operations — over three times the engine's 64-obligation bound —
  // with definitive Yes verdicts at every event, zero seed replay in the
  // steady state, a bounded live window, and a replay-valid witness at the
  // end.
  RegisterAdt Reg;
  IncrementalLinSession Inc(Reg);
  LinCheckOptions Opts;
  Opts.WantWitness = false;
  streamSequentialRegisterOps(Inc, 200, Opts, /*VerdictPerEvent=*/true);
  EXPECT_GT(Inc.retiredObligations(), 100u);
  EXPECT_LE(Inc.stats().LiveWindowHighWater, 64u);
  EXPECT_EQ(Inc.stats().WindowOverflows, 0u);
  EXPECT_FALSE(Inc.overflowed());
  // The final witness (retired prefix ++ live chain) must replay-validate
  // against the whole 400-event trace.
  LinCheckResult Final = Inc.verdict();
  ASSERT_EQ(Final.Outcome, Verdict::Yes);
  WellFormedness V = verifyLinWitness(Inc.trace(), Reg, Final.Witness);
  EXPECT_TRUE(bool(V)) << V.Reason;
  EXPECT_EQ(Final.Witness.Commits.size(), 200u);
}

TEST(IncrementalSessionTest, OverflowDrainRecoversWithoutACachedChain) {
  // A stream that outgrows the window with no verdict ever taken has no
  // cached chain to retire against: the excursion is noted at the append
  // (counter + overflowed()), and the next verdict *drains* it with
  // prefix sub-searches — no cached Yes required — then answers
  // definitively.
  RegisterAdt Reg;
  IncrementalLinSession Inc(Reg);
  LinCheckOptions Opts;
  streamSequentialRegisterOps(Inc, 70, Opts, /*VerdictPerEvent=*/false);
  EXPECT_TRUE(Inc.overflowed());
  EXPECT_EQ(Inc.stats().WindowOverflows, 1u);
  LinCheckResult R = Inc.verdict();
  EXPECT_EQ(R.Outcome, Verdict::Yes);
  EXPECT_FALSE(Inc.overflowed());
  EXPECT_GT(Inc.retiredObligations(), 0u);
  EXPECT_LE(Inc.liveWindow(), 64u);
}

TEST(IncrementalSessionTest, StragglerPinsTheCutThenDrainRecovers) {
  // A straggling operation that overlaps more than 64 completions pins
  // the quiescent cut. Verdicts during the excursion are *graded*: the
  // first pinned verdict runs one capped sub-search over the first 64
  // live obligations and reports BoundedYes (Outcome Unknown, the
  // out-of-window tail as Interference); later pinned verdicts serve the
  // cached sub-Yes with zero nodes. Once the straggler responds the
  // drain retires the backlog and definitive verdicts resume.
  RegisterAdt Reg;
  IncrementalLinSession Inc(Reg);
  LinCheckOptions Opts;
  Opts.WantWitness = false;
  std::unique_ptr<AdtState> Model = Reg.makeState();
  // The straggler invokes first and stays open.
  ASSERT_TRUE(Inc.append(makeInvoke(63, 1, reg::write(9))));
  streamSequentialRegisterOps(Inc, 70, Opts, /*VerdictPerEvent=*/true,
                              Model.get());
  EXPECT_TRUE(Inc.overflowed());
  EXPECT_EQ(Inc.stats().WindowOverflows, 1u);
  EXPECT_GE(Inc.stats().BoundedYesVerdicts, 1u);
  LinCheckResult Pinned = Inc.verdict(Opts);
  EXPECT_EQ(Pinned.Outcome, Verdict::Unknown);
  EXPECT_EQ(Pinned.Reason, WindowBoundedReason);
  EXPECT_EQ(Pinned.Grade, VerdictGrade::BoundedYes);
  EXPECT_EQ(Pinned.Interference, 6u);
  EXPECT_EQ(Pinned.NodesExplored, 0u)
      << "a pinned excursion searches its restriction once, then caches";
  // The straggler completes; its write lands here in the real-time order.
  Output Out = Model->apply(reg::write(9));
  ASSERT_TRUE(Inc.append(makeRespond(63, 1, reg::write(9), Out)));
  LinCheckResult R = Inc.verdict(Opts);
  EXPECT_EQ(R.Outcome, Verdict::Yes);
  EXPECT_EQ(R.Grade, VerdictGrade::Yes);
  EXPECT_FALSE(Inc.overflowed());
  EXPECT_GT(Inc.retiredObligations(), 0u);
  // And the steady state continues definitively after the excursion.
  streamSequentialRegisterOps(Inc, 5, Opts, /*VerdictPerEvent=*/true,
                              Model.get());
}

TEST(IncrementalSessionTest, NoPastRetirementDegradesToWindowRetired) {
  // After retirement a live-window No is not conclusive (a different
  // linearization of the pinned retired prefix might have worked): the
  // verdict must be the stable WindowRetired Unknown, never No — and a
  // dooming (ill-formed) event must still conclude No.
  RegisterAdt Reg;
  IncrementalLinSession Inc(Reg);
  LinCheckOptions Opts;
  Opts.WantWitness = false;
  streamSequentialRegisterOps(Inc, 100, Opts, /*VerdictPerEvent=*/true);
  ASSERT_GT(Inc.retiredObligations(), 0u);
  // Well-formed but inexplicable: the register never held 77.
  ASSERT_TRUE(Inc.append(makeInvoke(9, 1, reg::read())));
  ASSERT_TRUE(Inc.append(makeRespond(9, 1, reg::read(), Output{77})));
  LinCheckResult R = Inc.verdict(Opts);
  EXPECT_EQ(R.Outcome, Verdict::Unknown);
  EXPECT_EQ(R.Reason, WindowRetiredReason);
  EXPECT_GE(Inc.stats().WindowRetiredUnknowns, 1u);

  // Dooming path on a fresh long stream: ill-formedness is No regardless
  // of how much was retired ("batch on the suffix says No").
  IncrementalLinSession Doomy(Reg);
  streamSequentialRegisterOps(Doomy, 100, Opts, /*VerdictPerEvent=*/true);
  ASSERT_GT(Doomy.retiredObligations(), 0u);
  Action Dup = makeRespond(9, 1, reg::read(), Output{0});
  Doomy.append(Dup); // No matching open invocation: ill-formed.
  EXPECT_TRUE(Doomy.doomed());
  EXPECT_EQ(Doomy.verdict(Opts).Outcome, Verdict::No);
}

TEST(IncrementalSessionTest, MarkRewindRestoresPreRetirementWindow) {
  // SharePrefixes interplay: a mark taken before retirement must rewind
  // the whole window state back — retired count, window contents, and
  // exact (batch-equal) verdicts for a different suffix.
  RegisterAdt Reg;
  IncrementalLinSession Inc(Reg);
  LinCheckOptions Opts;
  Opts.WantWitness = false;
  std::unique_ptr<AdtState> Model = Reg.makeState();
  streamSequentialRegisterOps(Inc, 10, Opts, /*VerdictPerEvent=*/true,
                              Model.get());
  Inc.markPrefix();
  ASSERT_EQ(Inc.retiredObligations(), 0u);
  std::size_t MarkLen = Inc.size();

  streamSequentialRegisterOps(Inc, 90, Opts, /*VerdictPerEvent=*/true,
                              Model.get());
  ASSERT_GT(Inc.retiredObligations(), 0u);

  Inc.rewindToMark();
  EXPECT_EQ(Inc.retiredObligations(), 0u);
  EXPECT_EQ(Inc.size(), MarkLen);
  EXPECT_EQ(Inc.liveWindow(), 10u);
  // A contradicting response must now be an exact No again (nothing is
  // retired in the rewound window).
  ASSERT_TRUE(Inc.append(makeInvoke(9, 1, reg::read())));
  ASSERT_TRUE(Inc.append(makeRespond(9, 1, reg::read(), Output{77})));
  LinCheckResult R = Inc.verdict(Opts);
  Trace Prefix = Inc.trace();
  EXPECT_EQ(R.Outcome, Verdict::No);
  EXPECT_EQ(checkLinearizable(Prefix, Reg).Outcome, Verdict::No);
}

TEST(IncrementalSessionTest, CyclingInterpretationsKeepTheHotFrontier) {
  // Regression for the frontier-table eviction policy: a consensus stream
  // whose proposals keep raising the trace maximum makes the relation's
  // extended-extreme interpretations change hash at every verdict (two
  // fresh admissions per verdict, >64 total), while the canonical
  // interpretation recurs every time. Eviction must be
  // least-recently-resumed and never the in-flight hash, so the hot
  // canonical frontier keeps resuming — FrontierResumes keeps climbing —
  // no matter how many one-shot interpretations cycle through.
  ConsensusAdt Cons;
  PhaseSignature Sig(2, 3);
  ConsensusInitRelation Rel;
  IncrementalSlinSession Inc(Cons, Sig, Rel);
  SlinCheckOptions O;
  O.WantWitness = false;

  // Both clients switch into the phase with value 5 and decide it (a
  // backup-phase client must enter via an init action before it can
  // invoke).
  ASSERT_TRUE(
      Inc.append(makeSwitch(1, 2, cons::proposeBy(5, 1), SwitchValue{5})));
  ASSERT_TRUE(
      Inc.append(makeRespond(1, 2, cons::proposeBy(5, 1), cons::decide(5))));
  ASSERT_TRUE(
      Inc.append(makeSwitch(2, 2, cons::proposeBy(5, 2), SwitchValue{5})));
  ASSERT_TRUE(
      Inc.append(makeRespond(2, 2, cons::proposeBy(5, 2), cons::decide(5))));
  ASSERT_EQ(Inc.verdict(O).Outcome, Verdict::Yes);

  const unsigned Rounds = 55; // Stays within the 64-response window.
  for (unsigned K = 0; K != Rounds; ++K) {
    Input In = cons::proposeBy(100 + static_cast<std::int64_t>(K), 2);
    ASSERT_TRUE(Inc.append(makeInvoke(2, 2, In)));
    ASSERT_TRUE(Inc.append(makeRespond(2, 2, In, cons::decide(5))));
    ASSERT_EQ(Inc.verdict(O).Outcome, Verdict::Yes) << "round " << K;
  }
  // Two fresh extended interpretations per verdict cycle through the
  // 64-entry bound...
  EXPECT_LE(Inc.retainedFrontiers(), 64u);
  // ...but the canonical frontier must have kept resuming: one resume per
  // verdict after the first capture (conservative floor: the admissions
  // alone exceed the table bound, so an arbitrary-eviction policy would
  // have dropped the canonical entry on some rounds).
  EXPECT_GE(Inc.stats().FrontierResumes, static_cast<std::uint64_t>(Rounds))
      << "cycling interpretations thrashed the hot frontier";
}

TEST(IncrementalSessionTest, SlinOverflowDrainRecoversWithoutACachedChain) {
  // The slin analogue of OverflowDrainRecoversWithoutACachedChain: 100
  // completions with no verdict in between overflow the window silently;
  // the next verdict drains it — capped prefix sub-searches per
  // interpretation, folded at the family's common alignment — and answers
  // definitively.
  RegisterAdt Reg;
  PhaseSignature Sig(1, 2);
  UniversalInitRelation Rel;
  IncrementalSlinSession Inc(Reg, Sig, Rel);
  std::unique_ptr<AdtState> Model = Reg.makeState();
  for (unsigned K = 0; K != 100; ++K) {
    Input In = K % 3 ? reg::write(static_cast<std::int64_t>(1 + K % 3))
                     : reg::read();
    Output Out = Model->apply(In);
    ASSERT_TRUE(Inc.append(makeInvoke(K % 4, 1, In)));
    ASSERT_TRUE(Inc.append(makeRespond(K % 4, 1, In, Out)));
  }
  EXPECT_TRUE(Inc.overflowed());
  EXPECT_EQ(Inc.stats().WindowOverflows, 1u);
  SlinCheckOptions O;
  O.WantWitness = false;
  SlinVerdict R = Inc.verdict(O);
  EXPECT_EQ(R.Outcome, Verdict::Yes) << R.Reason;
  EXPECT_EQ(R.Grade, VerdictGrade::Yes);
  EXPECT_FALSE(Inc.overflowed());
  EXPECT_GT(Inc.retiredObligations(), 0u);
  EXPECT_LE(Inc.liveWindow(), 64u);
}

TEST(IncrementalSessionTest, SlinStragglerPinsTheCutThenDrainRecovers) {
  // The slin analogue of StragglerPinsTheCutThenDrainRecovers: while a
  // straggling invocation pins the quiescent cut past the window, pinned
  // verdicts report the graded BoundedYes (every family member linearized
  // the first 64 live obligations; only the out-of-window tail is
  // unchecked), served from cache after the first capped sub-search. Once
  // the straggler responds, the drain retires the backlog and definitive
  // verdicts resume — the excursion was transient and counted once.
  RegisterAdt Reg;
  PhaseSignature Sig(1, 2);
  UniversalInitRelation Rel;
  IncrementalSlinSession Inc(Reg, Sig, Rel);
  SlinCheckOptions O;
  O.WantWitness = false;
  std::unique_ptr<AdtState> Model = Reg.makeState();
  // The straggler invokes first and stays open.
  ASSERT_TRUE(Inc.append(makeInvoke(63, 1, reg::write(9))));
  for (unsigned K = 0; K != 70; ++K) {
    Input In = K % 3 ? reg::write(static_cast<std::int64_t>(1 + K % 3))
                     : reg::read();
    Output Out = Model->apply(In);
    ASSERT_TRUE(Inc.append(makeInvoke(K % 4, 1, In)));
    ASSERT_TRUE(Inc.append(makeRespond(K % 4, 1, In, Out)));
    SlinVerdict V = Inc.verdict(O);
    if (!Inc.overflowed())
      ASSERT_EQ(V.Outcome, Verdict::Yes) << "op " << K;
    else
      ASSERT_EQ(V.Grade, VerdictGrade::BoundedYes)
          << "op " << K << " (reason: " << V.Reason << ")";
  }
  EXPECT_TRUE(Inc.overflowed());
  EXPECT_EQ(Inc.stats().WindowOverflows, 1u);
  EXPECT_GE(Inc.stats().BoundedYesVerdicts, 1u);
  SlinVerdict Pinned = Inc.verdict(O);
  EXPECT_EQ(Pinned.Outcome, Verdict::Unknown);
  EXPECT_EQ(Pinned.Reason, WindowBoundedReason);
  EXPECT_EQ(Pinned.Grade, VerdictGrade::BoundedYes);
  EXPECT_EQ(Pinned.Interference, 6u);
  EXPECT_EQ(Pinned.NodesExplored, 0u)
      << "a pinned excursion searches its restriction once, then caches";
  // The straggler completes; its write lands here in the real-time order.
  Output Out = Model->apply(reg::write(9));
  ASSERT_TRUE(Inc.append(makeRespond(63, 1, reg::write(9), Out)));
  SlinVerdict R = Inc.verdict(O);
  EXPECT_EQ(R.Outcome, Verdict::Yes) << R.Reason;
  EXPECT_EQ(R.Grade, VerdictGrade::Yes);
  EXPECT_FALSE(Inc.overflowed());
  EXPECT_GT(Inc.retiredObligations(), 0u);
  // And the steady state continues definitively after the excursion.
  for (unsigned K = 0; K != 5; ++K) {
    Input In = reg::write(static_cast<std::int64_t>(K));
    Output Out2 = Model->apply(In);
    ASSERT_TRUE(Inc.append(makeInvoke(K % 4, 1, In)));
    ASSERT_TRUE(Inc.append(makeRespond(K % 4, 1, In, Out2)));
    ASSERT_EQ(Inc.verdict(O).Outcome, Verdict::Yes) << "post-drain op " << K;
  }
}

TEST(IncrementalSessionTest, SlinOverflowDrainWithInitActionsSeedsTheLcp) {
  // Overflow + drain on a trace whose interpretation family is nontrivial:
  // each member's capped sub-search seeds that member's init LCP, and the
  // family folds at the common alignment — frontiers for every member are
  // created at the fold, so post-drain verdicts ride behind per-member
  // retired boundaries.
  ConsensusAdt Cons;
  PhaseSignature Sig(2, 3);
  ConsensusInitRelation Rel;
  IncrementalSlinSession Inc(Cons, Sig, Rel);
  SlinCheckOptions O;
  O.WantWitness = false;
  ASSERT_TRUE(
      Inc.append(makeSwitch(1, 2, cons::proposeBy(5, 1), SwitchValue{5})));
  ASSERT_TRUE(
      Inc.append(makeRespond(1, 2, cons::proposeBy(5, 1), cons::decide(5))));
  ASSERT_TRUE(
      Inc.append(makeSwitch(2, 2, cons::proposeBy(5, 2), SwitchValue{5})));
  ASSERT_TRUE(
      Inc.append(makeRespond(2, 2, cons::proposeBy(5, 2), cons::decide(5))));
  // 80 further decides with no verdict in between: the window overflows.
  for (unsigned K = 0; K != 80; ++K) {
    Input In = cons::proposeBy(100 + static_cast<std::int64_t>(K), 2);
    ASSERT_TRUE(Inc.append(makeInvoke(2, 2, In)));
    ASSERT_TRUE(Inc.append(makeRespond(2, 2, In, cons::decide(5))));
  }
  EXPECT_TRUE(Inc.overflowed());
  SlinVerdict R = Inc.verdict(O);
  EXPECT_EQ(R.Outcome, Verdict::Yes) << R.Reason;
  EXPECT_FALSE(Inc.overflowed());
  EXPECT_GT(Inc.retiredObligations(), 0u);
  EXPECT_LE(Inc.liveWindow(), 64u);
  // Definitive verdicts continue on the retired session — for appends that
  // keep the family stable (re-proposing a seen value). A *fresh* value
  // would mint extended interpretations with no frontier at the session's
  // retirement depth, which is a sound WindowRetired Unknown by design.
  for (unsigned K = 0; K != 3; ++K) {
    Input In = cons::proposeBy(5, 2);
    ASSERT_TRUE(Inc.append(makeInvoke(2, 2, In)));
    ASSERT_TRUE(Inc.append(makeRespond(2, 2, In, cons::decide(5))));
    ASSERT_EQ(Inc.verdict(O).Outcome, Verdict::Yes) << "post-drain round "
                                                    << K;
  }
}
