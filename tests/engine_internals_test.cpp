//===- tests/engine_internals_test.cpp - Engine building blocks -----------==//
//
// Part of the slin project.
//
//===----------------------------------------------------------------------===//
//
// Direct unit tests for the engine's building blocks, which until now were
// covered only through whole-checker runs: the Arena's rewind/overflow
// block reuse (the guarantee that a corpus run performs a bounded number of
// real heap allocations) and the TranspositionTable's lazy growth and
// always-replace-at-capacity semantics (the guarantee that memo pressure
// costs re-exploration, never a wrong verdict), plus the CorpusDriver's
// scheduling-independent results.
//
//===----------------------------------------------------------------------===//

#include "adt/Consensus.h"
#include "engine/CorpusDriver.h"
#include "engine/Transposition.h"
#include "spec/SpecAutomaton.h"
#include "support/Arena.h"
#include "trace/Gen.h"

#include <gtest/gtest.h>

using namespace slin;

//===----------------------------------------------------------------------===//
// Arena: bump allocation, rewind, and overflow-block reuse.
//===----------------------------------------------------------------------===//

TEST(ArenaTest, AllocationsAreDisjointAndAligned) {
  Arena A;
  std::int32_t *X = A.allocZeroed<std::int32_t>(10);
  std::int64_t *Y = A.allocArray<std::int64_t>(5);
  ASSERT_NE(X, nullptr);
  ASSERT_NE(Y, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(Y) % alignof(std::int64_t), 0u);
  // Writing one allocation must not disturb the other.
  for (int I = 0; I != 10; ++I)
    X[I] = I;
  for (int I = 0; I != 5; ++I)
    Y[I] = -1;
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(X[I], I);
  EXPECT_EQ(A.bytesAllocated(), 10 * sizeof(std::int32_t) +
                                    5 * sizeof(std::int64_t));
}

TEST(ArenaTest, ResetRewindsToTheSameStorage) {
  Arena A;
  void *First = A.allocate(128);
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  // After a rewind the first allocation reuses the first block's storage:
  // no new heap allocation, same address handed back.
  void *Again = A.allocate(128);
  EXPECT_EQ(First, Again);
}

TEST(ArenaTest, OverflowBlocksAreRetainedAndReused) {
  // A tiny block size forces overflow chaining immediately.
  Arena A(/*BlockBytes=*/64);
  void *Small = A.allocate(16);
  void *Big = A.allocate(1024); // Cannot fit a 64-byte block: dedicated block.
  ASSERT_NE(Small, nullptr);
  ASSERT_NE(Big, nullptr);
  A.reset();
  // The rewound arena must serve the same shapes from the retained blocks.
  void *Small2 = A.allocate(16);
  void *Big2 = A.allocate(1024);
  EXPECT_EQ(Small, Small2);
  EXPECT_EQ(Big, Big2);
}

TEST(ArenaTest, ZeroedArraysAreZeroAfterDirtyReuse) {
  Arena A(/*BlockBytes=*/64);
  std::int32_t *X = A.allocZeroed<std::int32_t>(8);
  for (int I = 0; I != 8; ++I)
    X[I] = 0x5A5A5A5A;
  A.reset();
  // allocZeroed must clear recycled (dirty) storage.
  std::int32_t *Y = A.allocZeroed<std::int32_t>(8);
  for (int I = 0; I != 8; ++I)
    EXPECT_EQ(Y[I], 0);
}

//===----------------------------------------------------------------------===//
// TranspositionTable: lazy growth and always-replace at capacity.
//===----------------------------------------------------------------------===//

TEST(TranspositionTest, InsertThenContains) {
  TranspositionTable T(1u << 12);
  EXPECT_FALSE(T.contains(42));
  T.insert(42);
  EXPECT_TRUE(T.contains(42));
  EXPECT_GE(T.stats().Inserts, 1u);
  EXPECT_GE(T.stats().Hits, 1u);
}

TEST(TranspositionTest, ZeroKeyIsStorable) {
  // 0 is the internal empty sentinel; the table must remap, not lose it.
  TranspositionTable T;
  EXPECT_FALSE(T.contains(0));
  T.insert(0);
  EXPECT_TRUE(T.contains(0));
}

TEST(TranspositionTest, GrowsUpToMaxCapacityUnderLoad) {
  TranspositionTable T(/*MaxCapacity=*/1u << 14);
  std::size_t Initial = T.capacity();
  Rng R(0x7AB1E);
  for (int I = 0; I != 1 << 13; ++I)
    T.insert(R.next());
  EXPECT_GT(T.capacity(), Initial);
  EXPECT_LE(T.capacity(), 1u << 14);
}

TEST(TranspositionTest, CapacityIsBoundedAndReplacementKeepsNewKeys) {
  // A deliberately tiny table: inserts far beyond capacity must neither
  // grow it past the bound nor ever fail to record the newest key.
  TranspositionTable T(/*MaxCapacity=*/64);
  Rng R(0xCAFE);
  std::uint64_t Last = 0;
  for (int I = 0; I != 4096; ++I) {
    Last = R.next();
    T.insert(Last);
    // Always-replace: the key just inserted is always findable, even when
    // its probe window was full and a victim was evicted.
    EXPECT_TRUE(T.contains(Last));
  }
  EXPECT_LE(T.capacity(), 64u);
  EXPECT_LE(T.liveKeys(), T.capacity());
  EXPECT_GT(T.stats().Evictions, 0u);
}

TEST(TranspositionTest, ClearForgetsEverything) {
  TranspositionTable T;
  for (std::uint64_t K = 1; K <= 100; ++K)
    T.insert(K);
  T.clear();
  EXPECT_EQ(T.liveKeys(), 0u);
  for (std::uint64_t K = 1; K <= 100; ++K)
    EXPECT_FALSE(T.contains(K));
}

//===----------------------------------------------------------------------===//
// CorpusDriver: results are positional and scheduling-independent.
//===----------------------------------------------------------------------===//

namespace {

std::vector<Trace> mixedConsensusCorpus(unsigned Count) {
  ConsensusAdt Cons;
  GenOptions G;
  G.NumClients = 4;
  G.NumOps = 8;
  G.Alphabet = {cons::propose(1), cons::propose(2), cons::propose(3)};
  G.Outputs = {cons::decide(1), cons::decide(2), cons::decide(3)};
  Rng R(0xD21E);
  std::vector<Trace> Corpus;
  for (unsigned I = 0; I != Count; ++I) {
    Corpus.push_back(genLinearizableTrace(Cons, G, R));
    Corpus.push_back(genArbitraryTrace(G, R));
  }
  return Corpus;
}

} // namespace

TEST(CorpusDriverTest, ThreadCountsAgreeTraceByTrace) {
  ConsensusAdt Cons;
  std::vector<Trace> Corpus = mixedConsensusCorpus(60);

  CorpusOptions Serial;
  Serial.Threads = 1;
  Serial.RetryBudgetLimitedFresh = true;
  CorpusReport Base = CorpusDriver(Cons, Serial).checkLin(Corpus);
  ASSERT_EQ(Base.Results.size(), Corpus.size());
  EXPECT_EQ(Base.ThreadsUsed, 1u);

  for (unsigned Threads : {2u, 4u}) {
    CorpusOptions Par = Serial;
    Par.Threads = Threads;
    Par.ChunkSize = 3; // Exercise many steals.
    CorpusReport R = CorpusDriver(Cons, Par).checkLin(Corpus);
    ASSERT_EQ(R.Results.size(), Corpus.size());
    EXPECT_EQ(R.Yes, Base.Yes);
    EXPECT_EQ(R.No, Base.No);
    EXPECT_EQ(R.Unknown, Base.Unknown);
    for (std::size_t I = 0; I != Corpus.size(); ++I)
      EXPECT_EQ(R.Results[I].Outcome, Base.Results[I].Outcome)
          << "trace " << I << " changed verdict at " << Threads
          << " threads";
  }
}

TEST(CorpusDriverTest, AggregateCountsEveryCheck) {
  ConsensusAdt Cons;
  std::vector<Trace> Corpus = mixedConsensusCorpus(20);
  CorpusOptions O;
  O.Threads = 2;
  CorpusReport R = CorpusDriver(Cons, O).checkLin(Corpus);
  EXPECT_EQ(R.Aggregate.Checks, Corpus.size());
  EXPECT_EQ(R.Yes + R.No + R.Unknown, Corpus.size());
  EXPECT_GT(R.Aggregate.Search.Nodes, 0u);
}

TEST(CorpusDriverTest, BudgetLimitedIsReportedAndRetryRunsOneShot) {
  ConsensusAdt Cons;
  std::vector<Trace> Corpus = mixedConsensusCorpus(10);

  LinCheckOptions Tight;
  Tight.NodeBudget = 1; // Everything non-trivial exhausts instantly.
  CorpusOptions NoRetry;
  NoRetry.Threads = 1; // Deterministic trace->session assignment.
  CorpusReport Starved = CorpusDriver(Cons, NoRetry).checkLin(Corpus, Tight);
  EXPECT_GT(Starved.Unknown, 0u);
  EXPECT_EQ(Starved.BudgetLimited, Starved.Unknown);
  for (const CorpusTraceResult &R : Starved.Results)
    if (R.Outcome == Verdict::Unknown)
      EXPECT_TRUE(R.BudgetLimited);

  // With retry enabled under the same tight budget, the repair pass must
  // actually run — once per budget-limited trace — and every result must
  // land on its one-shot verdict (fresh-session semantics) at the right
  // corpus position.
  CorpusOptions Retry = NoRetry;
  Retry.RetryBudgetLimitedFresh = true;
  CorpusReport Repaired = CorpusDriver(Cons, Retry).checkLin(Corpus, Tight);
  EXPECT_EQ(Repaired.Retried, Starved.BudgetLimited);
  EXPECT_GT(Repaired.Retried, 0u);
  ASSERT_EQ(Repaired.Results.size(), Corpus.size());
  for (std::size_t I = 0; I != Corpus.size(); ++I) {
    if (Starved.Results[I].Outcome != Verdict::Unknown)
      continue;
    LinCheckResult OneShot = checkLinearizable(Corpus[I], Cons, Tight);
    EXPECT_EQ(Repaired.Results[I].Outcome, OneShot.Outcome) << "trace " << I;
    EXPECT_EQ(Repaired.Results[I].BudgetLimited, OneShot.BudgetLimited);
  }

  // And with the default budget nothing is budget-limited, so the retry
  // pass has nothing to do.
  CorpusReport Roomy = CorpusDriver(Cons, Retry).checkLin(Corpus);
  EXPECT_EQ(Roomy.Unknown, 0u);
  EXPECT_EQ(Roomy.BudgetLimited, 0u);
  EXPECT_EQ(Roomy.Retried, 0u);
}

TEST(CorpusDriverTest, SlinCorpusRunsThroughTheDriver) {
  ConsensusAdt Cons;
  UniversalInitRelation Rel;
  PhaseSignature Sig(1, 2);
  SpecAutomaton A(Sig, 3);
  SpecAutomaton::WalkOptions W;
  W.Steps = 8;
  W.Alphabet = {cons::propose(1), cons::propose(2)};
  W.InitChoices = {{cons::ghostPropose(1)},
                   {cons::ghostPropose(1), cons::ghostPropose(2)}};
  Rng R(0xD21F);
  std::vector<Trace> Corpus;
  for (int I = 0; I != 30; ++I)
    Corpus.push_back(A.randomWalk(W, R, Rel));

  CorpusOptions Serial;
  Serial.Threads = 1;
  CorpusReport Base = CorpusDriver(Cons, Serial).checkSlin(Corpus, Sig, Rel);
  CorpusOptions Par = Serial;
  Par.Threads = 3;
  Par.ChunkSize = 2;
  CorpusReport R2 = CorpusDriver(Cons, Par).checkSlin(Corpus, Sig, Rel);
  ASSERT_EQ(Base.Results.size(), R2.Results.size());
  for (std::size_t I = 0; I != Base.Results.size(); ++I)
    EXPECT_EQ(Base.Results[I].Outcome, R2.Results[I].Outcome);
  EXPECT_GT(Base.Yes + Base.No, 0u);
}
