//===- tests/steady_alloc_test.cpp - Zero-alloc steady-state audit --------==//
//
// Part of the slin project.
//
//===----------------------------------------------------------------------===//
//
// Locks the data-oriented hot path's allocation-free contract: a resumable
// outcome-only monitor (trace retention off, retired-witness retention
// off) in steady state — one complete operation per event batch, verdict
// after each — must touch the heap ZERO times per event. This binary
// interposes the global operator new (support/AllocGauge.h), so the
// assertion covers every code path in append()+verdict(), library
// internals included, not just the ones we remembered to audit. The
// session's scratch arena is audited alongside: its high-water and
// reserved bytes must be flat across the run (events reuse the warmed
// blocks; none grows them).
//
// The same run pins the fast path's bookkeeping: every steady verdict is
// Yes with exactly one node explored, served by the in-session fast path
// (FastPathVerdicts advances per verdict), with the window bounded by
// retirement the whole way.
//
// Under ASan the interposer is compiled out (the sanitizer owns operator
// new); AllocGauge::active() reports that and the heap assertions become
// vacuous there — the arena and bookkeeping assertions still run.
//
//===----------------------------------------------------------------------===//

#include "adt/Consensus.h"
#include "adt/Register.h"
#include "engine/Incremental.h"
#include "support/AllocGauge.h"
#include "trace/Gen.h"

#include <gtest/gtest.h>

#include <memory>

SLIN_DEFINE_ALLOC_GAUGE()

using namespace slin;

namespace {

/// A linearizable register history in fully-quiescing rounds of \p Conc
/// concurrent operations (every round boundary is a quiescence cut, so the
/// windowed session retires continuously) — the same steady-state shape
/// the E8 Long benchmark runs.
Trace quiescingRegisterHistory(unsigned Events, unsigned Conc,
                               std::uint64_t Seed) {
  RegisterAdt Reg;
  std::unique_ptr<AdtState> S = Reg.makeState();
  const Input Alphabet[] = {reg::read(), reg::write(1), reg::write(2),
                            reg::write(3)};
  Rng R(Seed);
  Trace T;
  unsigned Ops = Events / 2;
  for (unsigned I = 0; I < Ops; I += Conc) {
    unsigned RoundOps = std::min(Conc, Ops - I);
    std::vector<Input> Ins;
    for (unsigned C = 0; C != RoundOps; ++C) {
      Ins.push_back(Alphabet[R.next() % 4]);
      T.push_back(makeInvoke(C, 1, Ins.back()));
    }
    for (unsigned C = 0; C != RoundOps; ++C)
      T.push_back(makeRespond(C, 1, Ins[C], S->apply(Ins[C])));
  }
  return T;
}

} // namespace

TEST(SteadyAlloc, SteadyStateEventsAreAllocationFree) {
  RegisterAdt Reg;
  IncrementalOptions Opts;
  Opts.RetainTrace = false;          // Outcome-only: no O(n) trace view.
  Opts.RetainRetiredWitness = false; // Retired prefix as a pure counter.
  IncrementalLinSession Inc(Reg, Opts);
  LinCheckOptions Limits;
  Limits.WantWitness = false;

  // Prime: stream a quiescing history with a verdict per event, so
  // retirement always has a covering success frontier to fold.
  Trace T = quiescingRegisterHistory(1024, 4, 0x5A11);
  for (const Action &A : T) {
    ASSERT_TRUE(static_cast<bool>(Inc.append(A)));
    ASSERT_EQ(Inc.verdict(Limits).Outcome, Verdict::Yes);
  }

  // Replica of the linearization order the generator used; supplies the
  // outputs of the steady-state extension.
  std::unique_ptr<AdtState> Model = Reg.makeState();
  for (const Action &A : T)
    if (isInvoke(A))
      Model->apply(A.In);

  auto OneEvent = [&](std::uint64_t K) {
    Input In = K % 3 ? reg::write(static_cast<std::int64_t>(1 + K % 3))
                     : reg::read();
    Output Out = Model->apply(In);
    Inc.append(makeInvoke(62, 1, In));
    Inc.append(makeRespond(62, 1, In, Out));
    return Inc.verdict(Limits);
  };

  // Warm-up: a few hundred steady events settle every capacity (window
  // slots, success chain, frontier used-counts, arena blocks).
  for (std::uint64_t K = 0; K != 256; ++K)
    ASSERT_EQ(OneEvent(K).Outcome, Verdict::Yes);

  // Measured region: 1k steady events, zero heap allocations. Plain
  // counters inside the loop — gtest machinery stays outside it.
  const std::uint64_t Allocs0 = AllocGauge::count();
  const std::size_t High0 = Inc.scratchArena().highWaterBytes();
  const std::size_t Reserved0 = Inc.scratchArena().reservedBytes();
  const std::uint64_t Fast0 = Inc.stats().FastPathVerdicts;
  std::uint64_t NonYes = 0, Nodes = 0;
  constexpr std::uint64_t Events = 1000;
  for (std::uint64_t K = 256; K != 256 + Events; ++K) {
    LinCheckResult R = OneEvent(K);
    NonYes += R.Outcome != Verdict::Yes;
    Nodes += R.NodesExplored;
  }

  EXPECT_EQ(NonYes, 0u);
  EXPECT_EQ(Nodes, Events) << "steady-state verdicts must cost 1 node each";
  EXPECT_EQ(Inc.stats().FastPathVerdicts - Fast0, Events)
      << "every steady verdict must be served by the fast path";
  EXPECT_EQ(Inc.scratchArena().highWaterBytes(), High0)
      << "scratch arena grew during steady state";
  EXPECT_EQ(Inc.scratchArena().reservedBytes(), Reserved0)
      << "scratch arena reserved new blocks during steady state";
  EXPECT_LE(Inc.stats().LiveWindowHighWater, 64u);
  if (AllocGauge::active())
    EXPECT_EQ(AllocGauge::count() - Allocs0, 0u)
        << "steady-state events must not touch the heap";
}

// The same contract for the slin session: an outcome-only speculative
// monitor on a switch-free consensus stream (the whole-object monitoring
// shape — a singleton interpretation family) must be heap-silent per steady
// event, with every verdict served by the slin family fast path over the
// shared SoA window and the window bounded by retirement throughout.
TEST(SteadyAlloc, SlinSteadyStateEventsAreAllocationFree) {
  ConsensusAdt Cons;
  PhaseSignature Sig(1, 2);
  ConsensusInitRelation Rel;
  IncrementalOptions Opts;
  Opts.RetainTrace = false;          // Outcome-only: no O(n) trace view.
  Opts.RetainRetiredWitness = false; // Retired prefixes as pure counters.
  IncrementalSlinSession Inc(Cons, Sig, Rel, Opts);
  SlinCheckOptions Limits;
  Limits.WantWitness = false;

  // Replica of the single-client linearization order; supplies the stream's
  // outputs. Single-client operation means every response is a quiescent
  // cut, so retirement runs continuously.
  std::unique_ptr<AdtState> Model = Cons.makeState();
  std::uint64_t K = 0;
  auto OneEvent = [&] {
    Input In = cons::propose(static_cast<std::int64_t>(1 + K % 3));
    ++K;
    Output Out = Model->apply(In);
    Inc.append(makeInvoke(0, 1, In));
    Inc.append(makeRespond(0, 1, In, Out));
    return Inc.verdict(Limits);
  };

  // Prime + warm-up: several hundred steady operations settle every
  // capacity (interner, window slots, frontier chain, arena blocks).
  for (std::uint64_t I = 0; I != 512; ++I)
    ASSERT_EQ(OneEvent().Outcome, Verdict::Yes);

  // Measured region: 1k steady operations, zero heap allocations. Plain
  // counters inside the loop — gtest machinery stays outside it.
  const std::uint64_t Allocs0 = AllocGauge::count();
  const std::size_t High0 = Inc.scratchArena().highWaterBytes();
  const std::size_t Reserved0 = Inc.scratchArena().reservedBytes();
  const std::uint64_t Fast0 = Inc.stats().FastPathVerdicts;
  std::uint64_t NonYes = 0, Nodes = 0;
  constexpr std::uint64_t Events = 1000;
  for (std::uint64_t I = 0; I != Events; ++I) {
    SlinVerdict R = OneEvent();
    NonYes += R.Outcome != Verdict::Yes;
    Nodes += R.NodesExplored;
  }

  EXPECT_EQ(NonYes, 0u);
  EXPECT_EQ(Nodes, Events)
      << "steady slin verdicts must cost 1 node each (singleton family)";
  EXPECT_EQ(Inc.stats().FastPathVerdicts - Fast0, Events)
      << "every steady slin verdict must be served by the fast path";
  EXPECT_EQ(Inc.scratchArena().highWaterBytes(), High0)
      << "scratch arena grew during slin steady state";
  EXPECT_EQ(Inc.scratchArena().reservedBytes(), Reserved0)
      << "scratch arena reserved new blocks during slin steady state";
  EXPECT_GT(Inc.retiredObligations(), 0u);
  EXPECT_LE(Inc.stats().LiveWindowHighWater, 64u);
  EXPECT_EQ(Inc.stats().WindowOverflows, 0u);
  if (AllocGauge::active())
    EXPECT_EQ(AllocGauge::count() - Allocs0, 0u)
        << "steady slin events must not touch the heap";
}

// memoryFootprintBytes is an *estimate* (container capacities, arena
// reservations) offered to capacity planners; this audits it against the
// gauge-measured ground truth. A warmed outcome-only session's
// self-reported footprint must sit inside the net live-byte delta its
// construction and warm-up actually produced — never above it (the
// estimate must not invent bytes: real blocks carry allocator rounding on
// top of every capacity), and never below half of it (an estimate that
// loses the majority of the real footprint has stopped tracking a
// dominant structure and needs the audit to fail loudly).
TEST(SteadyAlloc, MemoryFootprintTracksMeasuredLiveBytes) {
  if (!AllocGauge::active() || !AllocGauge::tracksBytes())
    GTEST_SKIP() << "byte metering unavailable (sanitizer or non-glibc)";
  RegisterAdt Reg;
  IncrementalOptions Opts;
  Opts.RetainTrace = false;
  Opts.RetainRetiredWitness = false;
  // A small table keeps the one flat preallocation from drowning the
  // capacity-accounted containers the audit is really about.
  Opts.TranspositionCapacity = 1u << 8;
  LinCheckOptions Limits;
  Limits.WantWitness = false;
  std::unique_ptr<AdtState> Model = Reg.makeState();

  const std::uint64_t Live0 = AllocGauge::liveBytes();
  auto Inc = std::make_unique<IncrementalLinSession>(Reg, Opts);
  for (std::uint64_t K = 0; K != 512; ++K) {
    Input In = K % 3 ? reg::write(static_cast<std::int64_t>(1 + K % 3))
                     : reg::read();
    Output Out = Model->apply(In);
    ASSERT_TRUE(static_cast<bool>(Inc->append(makeInvoke(K % 4, 1, In))));
    ASSERT_TRUE(
        static_cast<bool>(Inc->append(makeRespond(K % 4, 1, In, Out))));
    ASSERT_EQ(Inc->verdict(Limits).Outcome, Verdict::Yes);
  }
  const std::uint64_t LiveDelta = AllocGauge::liveBytes() - Live0;
  const std::size_t Footprint = Inc->memoryFootprintBytes();

  EXPECT_LE(Footprint, LiveDelta)
      << "footprint estimate exceeds the measured live heap delta";
  EXPECT_GE(Footprint, LiveDelta / 2)
      << "footprint estimate lost the majority of the measured live heap "
      << "delta (" << LiveDelta << " bytes live, " << Footprint
      << " accounted)";
}

// The interposer itself must be observable: this binary defines the gauge,
// so outside sanitizer builds a plain heap allocation bumps the counter.
// Guards against the gauge silently not being wired (which would make the
// zero-delta assertion above vacuous).
TEST(SteadyAlloc, GaugeCountsAllocationsWhenActive) {
  if (!AllocGauge::active())
    GTEST_SKIP() << "sanitizer build: interposer compiled out";
  std::uint64_t Before = AllocGauge::count();
  auto P = std::make_unique<int>(42);
  ASSERT_NE(P, nullptr);
  EXPECT_GT(AllocGauge::count(), Before);
}
