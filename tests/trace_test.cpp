//===- tests/trace_test.cpp - Unit tests for the trace layer --------------==//
//
// Part of the slin project.
//
//===----------------------------------------------------------------------===//

#include "adt/Consensus.h"
#include "trace/Gen.h"
#include "trace/Signature.h"
#include "trace/Trace.h"
#include "trace/TraceIo.h"
#include "trace/WellFormed.h"

#include <gtest/gtest.h>

using namespace slin;

namespace {

Input P(std::int64_t V) { return cons::propose(V); }
Output D(std::int64_t V) { return cons::decide(V); }

} // namespace

TEST(SignatureTest, MembershipRespectsPhaseRanges) {
  PhaseSignature Sig12(1, 2);
  EXPECT_TRUE(Sig12.contains(makeInvoke(0, 1, P(1))));
  EXPECT_FALSE(Sig12.contains(makeInvoke(0, 2, P(1)))); // Phase 2 inv: next.
  EXPECT_TRUE(Sig12.contains(makeRespond(0, 1, P(1), D(1))));
  EXPECT_FALSE(Sig12.contains(makeRespond(0, 2, P(1), D(1))));
  EXPECT_TRUE(Sig12.contains(makeSwitch(0, 2, P(1), SwitchValue{1})));
  EXPECT_TRUE(Sig12.contains(makeSwitch(0, 1, P(1), SwitchValue{1})));
  EXPECT_FALSE(Sig12.contains(makeSwitch(0, 3, P(1), SwitchValue{1})));

  PhaseSignature Sig23(2, 3);
  EXPECT_TRUE(Sig23.contains(makeInvoke(0, 2, P(1))));
  EXPECT_TRUE(Sig23.contains(makeSwitch(0, 2, P(1), SwitchValue{1})));
  EXPECT_FALSE(Sig23.contains(makeInvoke(0, 1, P(1))));
}

TEST(SignatureTest, InputOutputClassification) {
  PhaseSignature Sig(2, 4);
  EXPECT_TRUE(Sig.isInput(makeInvoke(0, 2, P(1))));
  EXPECT_TRUE(Sig.isInput(makeSwitch(0, 2, P(1), SwitchValue{1})));
  EXPECT_TRUE(Sig.isOutput(makeRespond(0, 3, P(1), D(1))));
  EXPECT_TRUE(Sig.isOutput(makeSwitch(0, 4, P(1), SwitchValue{1})));
  EXPECT_TRUE(Sig.isOutput(makeSwitch(0, 3, P(1), SwitchValue{1})));
  EXPECT_FALSE(Sig.isInput(makeSwitch(0, 4, P(1), SwitchValue{1})));
}

TEST(SignatureTest, InitAbortClassification) {
  PhaseSignature Sig(2, 3);
  EXPECT_TRUE(Sig.isInitAction(makeSwitch(0, 2, P(1), SwitchValue{1})));
  EXPECT_TRUE(Sig.isAbortAction(makeSwitch(0, 3, P(1), SwitchValue{1})));
  EXPECT_FALSE(Sig.isInitAction(makeInvoke(0, 2, P(1))));
}

TEST(SignatureTest, CompatibilityAndComposition) {
  PhaseSignature A(1, 2), B(2, 3), C(1, 3);
  EXPECT_TRUE(areCompatible(A, B));
  EXPECT_FALSE(areCompatible(A, A));
  EXPECT_FALSE(areCompatible(A, C)); // Overlapping responses at phase 1.
  PhaseSignature AB = composedSignature(A, B);
  EXPECT_EQ(AB, C);
}

TEST(TraceOpsTest, ProjectionSplitsComposedTrace) {
  PhaseSignature Sig12(1, 2), Sig23(2, 3);
  Trace T = {
      makeInvoke(1, 1, P(5)),
      makeInvoke(2, 1, P(7)),
      makeSwitch(2, 2, P(7), SwitchValue{5}),
      makeRespond(1, 1, P(5), D(5)),
      makeRespond(2, 2, P(7), D(5)),
  };
  Trace Tmn = projectTrace(T, Sig12);
  ASSERT_EQ(Tmn.size(), 4u); // Everything except the phase-2 response.
  EXPECT_TRUE(isSwitch(Tmn[2]));
  Trace Tno = projectTrace(T, Sig23);
  ASSERT_EQ(Tno.size(), 2u); // The switch and the phase-2 response.
  EXPECT_TRUE(isSwitch(Tno[0]));
  EXPECT_TRUE(isRespond(Tno[1]));
  // Coverage: every action is in at least one projection; the switch into 2
  // is in both (Appendix C).
  EXPECT_EQ(Tmn.size() + Tno.size(), T.size() + 1);
}

TEST(TraceOpsTest, InputsBeforeCountsInvocationsOnly) {
  Trace T = {
      makeInvoke(1, 1, P(5)),
      makeSwitch(2, 2, P(7), SwitchValue{5}),
      makeRespond(1, 1, P(5), D(5)),
      makeInvoke(2, 1, P(9)),
  };
  EXPECT_EQ(inputsBefore(T, 0).size(), 0u);
  EXPECT_EQ(inputsBefore(T, 2), History{P(5)});
  EXPECT_EQ(inputsBefore(T, 4), (History{P(5), P(9)}));
}

TEST(TraceOpsTest, ClientSubTraceDropsInteriorSwitches) {
  PhaseSignature Sig13(1, 3);
  Trace T = {
      makeInvoke(1, 1, P(5)),
      makeSwitch(1, 2, P(5), SwitchValue{5}), // Interior: projected away.
      makeRespond(1, 2, P(5), D(5)),
  };
  Trace Sub = clientSubTrace(T, 1, Sig13);
  ASSERT_EQ(Sub.size(), 2u);
  EXPECT_TRUE(isInvoke(Sub[0]));
  EXPECT_TRUE(isRespond(Sub[1]));
}

TEST(TraceOpsTest, InterleaveRoundTripsWithClientSubTraces) {
  // Interleave two disjoint single-client traces; each client's sub-trace
  // of the interleaving recovers the original.
  Trace T1 = {makeInvoke(1, 1, P(5)), makeRespond(1, 1, P(5), D(5))};
  Trace T2 = {makeInvoke(2, 1, P(7)), makeRespond(2, 1, P(7), D(5))};
  std::vector<bool> Schedule = {true, false, true, false};
  Trace T = interleave(T1, T2, Schedule);
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(clientSubTrace(T, 1), T1);
  EXPECT_EQ(clientSubTrace(T, 2), T2);
  EXPECT_EQ(T[0], T1[0]);
  EXPECT_EQ(T[1], T2[0]);
}

TEST(WellFormedLinTest, AcceptsAlternationWithPending) {
  Trace T = {
      makeInvoke(1, 1, P(5)),
      makeInvoke(2, 1, P(7)),
      makeRespond(2, 1, P(7), D(7)),
      makeInvoke(3, 1, P(9)), // Pending forever: fine.
      makeRespond(1, 1, P(5), D(7)),
  };
  EXPECT_TRUE(checkWellFormedLin(T).Ok);
}

TEST(WellFormedLinTest, RejectsResponseWithoutInvocation) {
  Trace T = {makeRespond(1, 1, P(5), D(5))};
  EXPECT_FALSE(checkWellFormedLin(T).Ok);
}

TEST(WellFormedLinTest, RejectsDoubleInvoke) {
  Trace T = {makeInvoke(1, 1, P(5)), makeInvoke(1, 1, P(6))};
  EXPECT_FALSE(checkWellFormedLin(T).Ok);
}

TEST(WellFormedLinTest, RejectsMismatchedResponse) {
  Trace T = {makeInvoke(1, 1, P(5)), makeRespond(1, 1, P(6), D(6))};
  EXPECT_FALSE(checkWellFormedLin(T).Ok);
}

TEST(WellFormedLinTest, RejectsSwitchActions) {
  Trace T = {makeInvoke(1, 1, P(5)),
             makeSwitch(1, 2, P(5), SwitchValue{5})};
  EXPECT_FALSE(checkWellFormedLin(T).Ok);
}

TEST(WellFormedPhaseTest, FirstPhaseClientLifecycle) {
  PhaseSignature Sig(1, 2);
  Trace T = {
      makeInvoke(1, 1, P(5)),
      makeRespond(1, 1, P(5), D(5)),
      makeInvoke(1, 1, P(6)),
      makeSwitch(1, 2, P(6), SwitchValue{5}), // Abort carries pending input.
  };
  EXPECT_TRUE(checkWellFormedPhase(T, Sig).Ok);
}

TEST(WellFormedPhaseTest, AbortMustBeLast) {
  PhaseSignature Sig(1, 2);
  Trace T = {
      makeInvoke(1, 1, P(5)),
      makeSwitch(1, 2, P(5), SwitchValue{5}),
      makeInvoke(1, 1, P(6)), // After abort: illegal.
  };
  EXPECT_FALSE(checkWellFormedPhase(T, Sig).Ok);
}

TEST(WellFormedPhaseTest, AbortMustCarryPendingInput) {
  PhaseSignature Sig(1, 2);
  Trace T = {
      makeInvoke(1, 1, P(5)),
      makeSwitch(1, 2, P(6), SwitchValue{5}), // Wrong input.
  };
  EXPECT_FALSE(checkWellFormedPhase(T, Sig).Ok);
}

TEST(WellFormedPhaseTest, SecondPhaseStartsWithInit) {
  PhaseSignature Sig(2, 3);
  Trace Good = {
      makeSwitch(1, 2, P(5), SwitchValue{5}),
      makeRespond(1, 2, P(5), D(5)),
      makeInvoke(1, 2, P(6)),
      makeRespond(1, 2, P(6), D(5)),
  };
  EXPECT_TRUE(checkWellFormedPhase(Good, Sig).Ok);

  Trace Bad = {makeInvoke(1, 2, P(5))}; // Must switch in first.
  EXPECT_FALSE(checkWellFormedPhase(Bad, Sig).Ok);

  Trace DoubleInit = {
      makeSwitch(1, 2, P(5), SwitchValue{5}),
      makeRespond(1, 2, P(5), D(5)),
      makeSwitch(1, 2, P(6), SwitchValue{5}), // Second init: illegal.
  };
  EXPECT_FALSE(checkWellFormedPhase(DoubleInit, Sig).Ok);
}

TEST(WellFormedPhaseTest, FirstPhaseForbidsInitActions) {
  PhaseSignature Sig(1, 2);
  Trace T = {makeSwitch(1, 1, P(5), SwitchValue{5})};
  EXPECT_FALSE(checkWellFormedPhase(T, Sig).Ok);
}

TEST(TraceIoTest, RoundTrip) {
  Trace T = {
      makeInvoke(1, 1, P(5)),
      makeSwitch(2, 2, P(7), SwitchValue{5}),
      makeRespond(1, 1, P(5), D(5)),
  };
  TraceParseResult R = parseTrace(formatTrace(T));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ParsedTrace, T);
}

TEST(TraceIoTest, CommentsAndBlanksIgnored) {
  TraceParseResult R = parseTrace("# a comment\n\ninv 1 1 0 0 5 0\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.ParsedTrace.size(), 1u);
  EXPECT_TRUE(isInvoke(R.ParsedTrace[0]));
}

TEST(TraceIoTest, DiagnosesBadLines) {
  EXPECT_FALSE(parseTrace("foo 1 1 0 0 5 0\n").Ok);
  EXPECT_FALSE(parseTrace("inv 1 1 0 0 5\n").Ok);     // Missing field.
  EXPECT_FALSE(parseTrace("inv 1 0 0 0 5 0\n").Ok);   // Phase 0.
  EXPECT_FALSE(parseTrace("res 1 1 0 0 5 0\n").Ok);   // res needs 8 fields.
  EXPECT_FALSE(parseTrace("inv x 1 0 0 5 0\n").Ok);   // Non-numeric.
}

TEST(GenTest, LinearizableGeneratorIsWellFormed) {
  ConsensusAdt Cons;
  GenOptions Opts;
  Opts.Alphabet = {P(1), P(2), P(3)};
  Rng R(123);
  for (int I = 0; I < 200; ++I) {
    Trace T = genLinearizableTrace(Cons, Opts, R);
    EXPECT_TRUE(checkWellFormedLin(T).Ok);
  }
}

TEST(GenTest, ArbitraryGeneratorIsWellFormed) {
  GenOptions Opts;
  Opts.Alphabet = {P(1), P(2)};
  Opts.Outputs = {D(1), D(2)};
  Rng R(321);
  for (int I = 0; I < 200; ++I) {
    Trace T = genArbitraryTrace(Opts, R);
    EXPECT_TRUE(checkWellFormedLin(T).Ok);
  }
}

TEST(GenTest, EnumerationVisitsOnlyWellFormed) {
  unsigned Count = 0;
  enumerateWellFormedTraces(2, 4, {P(1)}, {D(1)}, [&](const Trace &T) {
    ++Count;
    EXPECT_TRUE(checkWellFormedLin(T).Ok);
  });
  EXPECT_GT(Count, 10u);
}

TEST(GenTest, EnumerationCountMatchesHandCount) {
  // 1 client, alphabet {a}, outputs {o}, max 2 actions: traces are
  // [], [inv], [inv res] -> 3.
  unsigned Count = 0;
  enumerateWellFormedTraces(1, 2, {P(1)}, {D(1)},
                            [&](const Trace &) { ++Count; });
  EXPECT_EQ(Count, 3u);
}

TEST(GenTest, MutatorsReportApplicability) {
  GenOptions Opts;
  Opts.Alphabet = {P(1), P(2)};
  Opts.Outputs = {D(1), D(2)};
  Rng R(77);
  Trace Empty;
  EXPECT_FALSE(mutateTrace(Empty, MutationKind::FlipOutput, Opts, R));
  Trace T = {makeInvoke(1, 1, P(1)), makeRespond(1, 1, P(1), D(1))};
  Trace Copy = T;
  EXPECT_TRUE(mutateTrace(Copy, MutationKind::FlipOutput, Opts, R));
  EXPECT_NE(Copy, T);
  EXPECT_EQ(Copy[1].Out, D(2));
}
