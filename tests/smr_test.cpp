//===- tests/smr_test.cpp - Replicated state machine tests ----------------==//
//
// Part of the slin project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end validation of the SMR layer: the replicated object's trace is
/// linearizable with respect to the replicated ADT (the Section 6
/// universal-ADT story made concrete), every underlying consensus slot is
/// speculatively linearizable, and the system survives minority crashes and
/// lossy networks.
///
//===----------------------------------------------------------------------===//

#include "adt/KvStore.h"
#include "adt/Queue.h"
#include "lin/LinChecker.h"
#include "slin/SlinChecker.h"
#include "smr/Smr.h"
#include "trace/TraceIo.h"

#include <gtest/gtest.h>

using namespace slin;

namespace {

void expectSlotsSpeculativelyLinearizable(StackHarness &Stack,
                                          unsigned NumPhases) {
  ConsensusAdt Cons;
  ConsensusInitRelation Rel;
  SlinCheckOptions Relaxed;
  Relaxed.AbortValidityAtEnd = true;
  for (std::uint32_t Slot : Stack.slots()) {
    const Trace &T = Stack.slotTrace(Slot);
    SlinVerdict V =
        checkSlin(T, PhaseSignature(1, NumPhases + 1), Cons, Rel, Relaxed);
    ASSERT_EQ(V.Outcome, Verdict::Yes)
        << "slot " << Slot << ": " << V.Reason << "\n"
        << formatTrace(T);
  }
}

} // namespace

TEST(SmrTest, ReplicatedKvStoreIsLinearizable) {
  KvStoreAdt Kv;
  StackConfig Config;
  Config.NumServers = 3;
  Config.NumClients = 3;
  SmrHarness H(Config, Kv);
  H.submitAt(0, 0, kv::put(1, 10));
  H.submitAt(0, 1, kv::put(1, 20));
  H.submitAt(0, 2, kv::get(1));
  H.submitAt(400, 0, kv::get(1));
  H.submitAt(400, 1, kv::del(1));
  H.submitAt(800, 2, kv::get(1));
  H.run();

  for (const SmrOpRecord &Op : H.smrOps())
    ASSERT_TRUE(Op.Completed);
  LinCheckResult R = checkLinearizable(H.objectTrace(), Kv);
  EXPECT_EQ(R.Outcome, Verdict::Yes)
      << R.Reason << "\n"
      << formatTrace(H.objectTrace());
  expectSlotsSpeculativelyLinearizable(H.stack(), Config.NumPhases);
}

TEST(SmrTest, ReplicatedQueueIsLinearizable) {
  QueueAdt Q;
  StackConfig Config;
  Config.NumServers = 3;
  Config.NumClients = 2;
  SmrHarness H(Config, Q);
  H.submitAt(0, 0, queue::enq(1));
  H.submitAt(0, 1, queue::enq(2));
  H.submitAt(300, 0, queue::deq());
  H.submitAt(320, 1, queue::deq());
  H.submitAt(700, 0, queue::deq()); // Empty by now.
  H.run();
  for (const SmrOpRecord &Op : H.smrOps())
    ASSERT_TRUE(Op.Completed);
  LinCheckResult R = checkLinearizable(H.objectTrace(), Q);
  EXPECT_EQ(R.Outcome, Verdict::Yes)
      << R.Reason << "\n"
      << formatTrace(H.objectTrace());
}

TEST(SmrTest, SurvivesMinorityCrash) {
  for (std::uint64_t Seed = 1; Seed <= 8; ++Seed) {
    KvStoreAdt Kv;
    StackConfig Config;
    Config.NumServers = 5;
    Config.NumClients = 3;
    Config.Seed = Seed;
    SmrHarness H(Config, Kv);
    H.crashServerAt(25, 0);
    H.crashServerAt(90, 4);
    for (unsigned I = 0; I < 3; ++I)
      for (ClientId C = 0; C < 3; ++C)
        H.submitAt(I * 700, C,
                   kv::put(static_cast<std::int64_t>(C),
                           static_cast<std::int64_t>(10 * I + C)));
    H.run();
    for (const SmrOpRecord &Op : H.smrOps())
      ASSERT_TRUE(Op.Completed) << "seed " << Seed;
    KvStoreAdt KvCheck;
    EXPECT_EQ(checkLinearizable(H.objectTrace(), KvCheck).Outcome,
              Verdict::Yes)
        << "seed " << Seed;
    expectSlotsSpeculativelyLinearizable(H.stack(), Config.NumPhases);
  }
}

TEST(SmrTest, LossyNetworkStaysLinearizable) {
  for (std::uint64_t Seed = 1; Seed <= 8; ++Seed) {
    KvStoreAdt Kv;
    StackConfig Config;
    Config.NumServers = 3;
    Config.NumClients = 2;
    Config.Seed = Seed;
    Config.Net.LossProbability = 0.08;
    SmrHarness H(Config, Kv);
    H.submitAt(0, 0, kv::put(7, 70));
    H.submitAt(10, 1, kv::put(7, 71));
    H.submitAt(2000, 0, kv::get(7));
    H.submitAt(2100, 1, kv::get(7));
    H.run(500000);
    // Check whatever completed (liveness under loss is probabilistic).
    Trace T = H.objectTrace();
    KvStoreAdt KvCheck;
    EXPECT_EQ(checkLinearizable(T, KvCheck).Outcome, Verdict::Yes)
        << "seed " << Seed << "\n"
        << formatTrace(T);
  }
}

TEST(SmrTest, PaxosOnlyBaselineWorks) {
  KvStoreAdt Kv;
  StackConfig Config;
  Config.NumServers = 3;
  Config.NumClients = 2;
  Config.NumPhases = 1; // No fast path.
  SmrHarness H(Config, Kv);
  H.submitAt(0, 0, kv::put(3, 33));
  H.submitAt(5, 1, kv::get(3));
  H.run();
  for (const SmrOpRecord &Op : H.smrOps())
    ASSERT_TRUE(Op.Completed);
  EXPECT_EQ(checkLinearizable(H.objectTrace(), Kv).Outcome, Verdict::Yes);
}

TEST(SmrTest, CommandsLandInDistinctSlots) {
  KvStoreAdt Kv;
  StackConfig Config;
  Config.NumServers = 3;
  Config.NumClients = 3;
  SmrHarness H(Config, Kv);
  for (ClientId C = 0; C < 3; ++C)
    H.submitAt(0, C, kv::put(C, C));
  H.run();
  std::set<std::uint32_t> Slots;
  for (const SmrOpRecord &Op : H.smrOps()) {
    ASSERT_TRUE(Op.Completed);
    EXPECT_TRUE(Slots.insert(Op.Slot).second)
        << "two commands share slot " << Op.Slot;
  }
}
